//! Differential property tests of the content-addressed view pool.
//!
//! The pooled communication plane (copy-on-write delivery into a
//! [`ViewPool`](han_core::pool::ViewPool), nodes grouped for planning by
//! pool handle) must be **bit-invisible**: under random lossy and
//! packet-level CPs it must produce the same order-sensitive
//! `schedule_digest`, the same `divergent_rounds` and the same load trace
//! as the naive one-view-per-node reference plane (the
//! `set_reference_planning` oracle, which also disables planner
//! memoization). On top of exactness, the pool's memory contract is
//! pinned: live entries never exceed the node count, reclaimed slots are
//! reused (no unbounded growth across rounds), and an ideal CP keeps
//! exactly one entry.

use han_core::cp::event::EngineKind;
use han_core::cp::CpModel;
use han_core::simulation::{HanSimulation, SimulationConfig, SimulationOutcome, Strategy};
use han_device::appliance::DeviceId;
use han_device::duty_cycle::DutyCycleConstraints;
use han_device::request::Request;
use han_net::generators;
use han_radio::channel::ChannelModel;
use han_sim::time::{SimDuration, SimTime};
use han_st::StConfig;
use han_workload::fleet::FleetSpec;
use proptest::prelude::*;

fn run(
    devices: usize,
    requests: Vec<Request>,
    cp: CpModel,
    minutes: u64,
    seed: u64,
    reference: bool,
) -> SimulationOutcome {
    let config = SimulationConfig {
        fleet: FleetSpec::uniform(devices, 1.0, DutyCycleConstraints::paper())
            .expect("valid fleet"),
        duration: SimDuration::from_mins(minutes),
        round_period: SimDuration::from_secs(2),
        strategy: Strategy::coordinated(),
        cp,
        engine: EngineKind::Round,
        seed,
    };
    let mut sim = HanSimulation::new(config, requests).expect("valid config");
    sim.set_reference_planning(reference);
    sim.run()
}

prop_compose! {
    /// Up to one request per device slot, arriving inside the first
    /// 15 minutes (so windows are in flight while the CP is lossy).
    fn arb_workload()(
        devices in 3usize..9,
        specs in prop::collection::btree_map(0u32..9, 0u64..15, 1..9)
    ) -> (usize, Vec<Request>) {
        let requests = specs
            .into_iter()
            .map(|(slot, minute)| {
                Request::new(
                    DeviceId(slot % devices as u32),
                    SimTime::from_mins(minute),
                )
            })
            .collect();
        (devices, requests)
    }
}

/// Asserts the two planes are observably identical and returns the fast
/// outcome for further pool inspection.
fn assert_bit_invisible(
    devices: usize,
    requests: Vec<Request>,
    cp: CpModel,
    minutes: u64,
    seed: u64,
) -> Result<SimulationOutcome, TestCaseError> {
    let fast = run(devices, requests.clone(), cp.clone(), minutes, seed, false);
    let reference = run(devices, requests, cp, minutes, seed, true);
    prop_assert_eq!(
        fast.schedule_digest,
        reference.schedule_digest,
        "pooled plane must issue byte-identical schedules at every node"
    );
    prop_assert_eq!(fast.divergent_rounds, reference.divergent_rounds);
    prop_assert_eq!(&fast.trace, &reference.trace);
    prop_assert_eq!(fast.deadline_misses, reference.deadline_misses);
    prop_assert_eq!(fast.windows_served, reference.windows_served);
    prop_assert!((fast.energy_kwh - reference.energy_kwh).abs() < 1e-12);
    prop_assert!(
        reference.cp.view_pool.is_none(),
        "reference plane must not report pool stats"
    );
    Ok(fast)
}

/// The pool-side contract every pooled run must satisfy.
fn assert_pool_bounded(outcome: &SimulationOutcome, devices: usize) -> Result<(), TestCaseError> {
    let pool = outcome.cp.view_pool.expect("pooled plane reports stats");
    prop_assert!(
        pool.live_views <= devices,
        "live views {} exceed node count {}",
        pool.live_views,
        devices
    );
    prop_assert!(
        pool.slots <= pool.peak_views + 1,
        "slots {} vs peak {}: reclaimed entries must be reused, not leaked",
        pool.slots,
        pool.peak_views
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 10 } else { 24 }))]

    #[test]
    fn pooled_matches_reference_under_lossy_round(
        workload in arb_workload(),
        miss_milli in 0u64..600,
        seed in any::<u64>()
    ) {
        let (devices, requests) = workload;
        let cp = CpModel::LossyRound {
            miss_probability: miss_milli as f64 / 1000.0,
        };
        let fast = assert_bit_invisible(devices, requests, cp, 45, seed)?;
        assert_pool_bounded(&fast, devices)?;
    }

    #[test]
    fn pooled_matches_reference_under_lossy_record(
        workload in arb_workload(),
        miss_milli in 0u64..600,
        seed in any::<u64>()
    ) {
        let (devices, requests) = workload;
        let cp = CpModel::LossyRecord {
            miss_probability: miss_milli as f64 / 1000.0,
        };
        let fast = assert_bit_invisible(devices, requests, cp, 45, seed)?;
        assert_pool_bounded(&fast, devices)?;
    }

    #[test]
    fn pooled_matches_reference_under_packet_cp(
        workload in arb_workload(),
        channel_seed in any::<u64>(),
        seed in any::<u64>()
    ) {
        // Packet-level MiniCast on a 3×3 indoor grid: real per-link loss,
        // stale decodes, out-of-order seqs — the adversarial case for
        // copy-on-write delivery.
        let (devices, requests) = workload;
        let cp = CpModel::Packet {
            st: StConfig::default(),
            topology: generators::grid(3, 3, 18.0, ChannelModel::indoor_office(channel_seed)),
        };
        let fast = assert_bit_invisible(devices, requests, cp, 16, seed)?;
        assert_pool_bounded(&fast, devices)?;
    }

    #[test]
    fn ideal_cp_keeps_exactly_one_pooled_view(
        workload in arb_workload(),
        seed in any::<u64>()
    ) {
        let (devices, requests) = workload;
        let fast = assert_bit_invisible(devices, requests, CpModel::Ideal, 45, seed)?;
        let pool = fast.cp.view_pool.expect("pooled plane reports stats");
        prop_assert_eq!(pool.live_views, 1, "perfect dissemination shares one view");
        prop_assert_eq!(pool.peak_views, 1);
        prop_assert_eq!(pool.slots, 1);
    }
}
