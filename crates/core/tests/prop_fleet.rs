//! Differential property tests of the fleet-spec API migration.
//!
//! 1. **Class partitioning is invisible**: a heterogeneous [`FleetSpec`]
//!    whose classes are all 1 kW with the paper's constraints must be
//!    byte-identical — `schedule_digest`, load trace, `divergent_rounds`,
//!    service metrics — to the homogeneous single-class fleet of the same
//!    size (the old flat `device_count`/`device_power_kw` path), under
//!    ideal and lossy communication planes alike.
//! 2. **Memoization is power-blind**: on genuinely mixed-power,
//!    mixed-constraint fleets under lossy CPs, the memoized grouped
//!    execution plane must still issue byte-identical schedules to the
//!    naive per-node reference plane.

use han_core::cp::event::EngineKind;
use han_core::cp::CpModel;
use han_core::simulation::{HanSimulation, SimulationConfig, SimulationOutcome, Strategy};
use han_device::appliance::{ApplianceKind, DeviceId};
use han_device::duty_cycle::DutyCycleConstraints;
use han_device::request::Request;
use han_sim::time::{SimDuration, SimTime};
use han_workload::fleet::{DeviceClass, FleetSpec};
use proptest::prelude::*;

/// Type-2 kinds a 1 kW class can be drawn as; the kind never enters the
/// status record, so it must never influence the schedule.
const TYPE2_KINDS: [ApplianceKind; 5] = [
    ApplianceKind::AirConditioner,
    ApplianceKind::RoomHeater,
    ApplianceKind::WaterHeater,
    ApplianceKind::Fridge,
    ApplianceKind::WaterCooler,
];

fn run(
    fleet: FleetSpec,
    requests: Vec<Request>,
    cp: CpModel,
    reference: bool,
) -> SimulationOutcome {
    let config = SimulationConfig {
        fleet,
        duration: SimDuration::from_mins(45),
        round_period: SimDuration::from_secs(2),
        strategy: Strategy::coordinated(),
        cp,
        engine: EngineKind::Round,
        seed: 7,
    };
    let mut sim = HanSimulation::new(config, requests).expect("valid config");
    sim.set_reference_planning(reference);
    sim.run()
}

prop_compose! {
    /// A partition of `devices` into 1..=devices classes, plus a workload
    /// of up to one request per device inside the first 25 minutes.
    fn arb_partitioned_workload()(
        devices in 3usize..12,
        raw_cuts in prop::collection::vec(1..12usize, 0..4),
        kinds in prop::collection::vec(0..TYPE2_KINDS.len(), 12..13),
        specs in prop::collection::btree_map(0u32..12, 0u64..25, 1..12)
    ) -> (usize, Vec<usize>, Vec<ApplianceKind>, Vec<Request>) {
        // Split `devices` at the (in-range) cut points into class sizes.
        let mut cuts = raw_cuts;
        cuts.sort_unstable();
        cuts.dedup();
        let mut sizes = Vec::new();
        let mut prev = 0usize;
        for &c in cuts.iter().filter(|&&c| c < devices) {
            sizes.push(c - prev);
            prev = c;
        }
        sizes.push(devices - prev);
        let requests = specs
            .into_iter()
            .map(|(slot, minute)| {
                Request::new(DeviceId(slot % devices as u32), SimTime::from_mins(minute))
            })
            .collect();
        (devices, sizes, kinds.into_iter().map(|k| TYPE2_KINDS[k]).collect(), requests)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 12 } else { 32 }))]

    #[test]
    fn partitioned_1kw_fleet_identical_to_homogeneous(
        workload in arb_partitioned_workload(),
        miss_milli in 0u64..500,
    ) {
        let (devices, sizes, kinds, requests) = workload;
        let homogeneous = FleetSpec::uniform(devices, 1.0, DutyCycleConstraints::paper())
            .expect("valid fleet");
        let partitioned = FleetSpec::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &count)| {
                    DeviceClass::new(
                        format!("class {i}"),
                        kinds[i % kinds.len()],
                        1.0,
                        DutyCycleConstraints::paper(),
                        count,
                    )
                })
                .collect(),
        )
        .expect("valid fleet");
        prop_assert_eq!(partitioned.device_count(), devices);

        for cp in [
            CpModel::Ideal,
            CpModel::LossyRound {
                miss_probability: miss_milli as f64 / 1000.0,
            },
        ] {
            let uniform = run(homogeneous.clone(), requests.clone(), cp.clone(), false);
            let split = run(partitioned.clone(), requests.clone(), cp, false);
            prop_assert_eq!(
                split.schedule_digest, uniform.schedule_digest,
                "class partitioning must not change a single schedule byte"
            );
            prop_assert_eq!(&split.trace, &uniform.trace);
            prop_assert_eq!(split.divergent_rounds, uniform.divergent_rounds);
            prop_assert_eq!(split.deadline_misses, uniform.deadline_misses);
            prop_assert_eq!(split.windows_served, uniform.windows_served);
            prop_assert!((split.energy_kwh - uniform.energy_kwh).abs() < 1e-12);
        }
    }

    #[test]
    fn memoized_matches_reference_on_mixed_fleets_under_loss(
        workload in arb_partitioned_workload(),
        power_deci in prop::collection::vec(1u32..40, 12..13),
        dcd_mins in prop::collection::vec(5u64..16, 12..13),
        miss_milli in 0u64..500,
        per_record in any::<bool>(),
    ) {
        let (_, sizes, kinds, requests) = workload;
        // Mixed powers (0.1..4.0 kW) and mixed minDCD (5..15 min, maxDCP
        // = 2 × minDCD) per class: full heterogeneity under a lossy CP.
        let fleet = FleetSpec::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &count)| {
                    let dcd = SimDuration::from_mins(dcd_mins[i % dcd_mins.len()]);
                    DeviceClass::new(
                        format!("class {i}"),
                        kinds[i % kinds.len()],
                        f64::from(power_deci[i % power_deci.len()]) / 10.0,
                        DutyCycleConstraints::new(dcd, dcd + dcd).expect("dcd <= dcp"),
                        count,
                    )
                })
                .collect(),
        )
        .expect("valid fleet");
        let p = miss_milli as f64 / 1000.0;
        let cp = if per_record {
            CpModel::LossyRecord { miss_probability: p }
        } else {
            CpModel::LossyRound { miss_probability: p }
        };
        let fast = run(fleet.clone(), requests.clone(), cp.clone(), false);
        let reference = run(fleet, requests, cp, true);
        prop_assert_eq!(
            fast.schedule_digest, reference.schedule_digest,
            "memoized plane must be byte-identical on heterogeneous fleets"
        );
        prop_assert_eq!(&fast.trace, &reference.trace);
        prop_assert_eq!(fast.divergent_rounds, reference.divergent_rounds);
        prop_assert_eq!(fast.deadline_misses, reference.deadline_misses);
        prop_assert_eq!(fast.windows_served, reference.windows_served);
    }
}
