//! Differential property test of the memoized execution plane.
//!
//! For random request workloads under random *lossy* communication planes
//! (where per-node views genuinely diverge), the memoized
//! grouped-planning fast path must produce **byte-identical schedules**
//! at every node in every round — probed by the order-sensitive
//! `schedule_digest` — and identical `divergent_rounds`, load traces and
//! service metrics to the naive per-node reference path.

use han_core::cp::event::EngineKind;
use han_core::cp::CpModel;
use han_core::simulation::{HanSimulation, SimulationConfig, SimulationOutcome, Strategy};
use han_device::appliance::DeviceId;
use han_device::duty_cycle::DutyCycleConstraints;
use han_device::request::Request;
use han_sim::time::{SimDuration, SimTime};
use han_workload::fleet::FleetSpec;
use proptest::prelude::*;

fn run(
    devices: usize,
    requests: Vec<Request>,
    cp: CpModel,
    seed: u64,
    reference: bool,
) -> SimulationOutcome {
    let config = SimulationConfig {
        fleet: FleetSpec::uniform(devices, 1.0, DutyCycleConstraints::paper())
            .expect("valid fleet"),
        duration: SimDuration::from_mins(45),
        round_period: SimDuration::from_secs(2),
        strategy: Strategy::coordinated(),
        cp,
        engine: EngineKind::Round,
        seed,
    };
    let mut sim = HanSimulation::new(config, requests).expect("valid config");
    sim.set_reference_planning(reference);
    sim.run()
}

prop_compose! {
    /// Up to one request per device slot, arriving inside the first
    /// 25 minutes (so windows are in flight while the CP is lossy).
    fn arb_workload()(
        devices in 3usize..12,
        specs in prop::collection::btree_map(0u32..12, 0u64..25, 1..12)
    ) -> (usize, Vec<Request>) {
        let requests = specs
            .into_iter()
            .map(|(slot, minute)| {
                Request::new(
                    DeviceId(slot % devices as u32),
                    SimTime::from_mins(minute),
                )
            })
            .collect();
        (devices, requests)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 12 } else { 32 }))]

    #[test]
    fn memoized_matches_reference_under_lossy_round(
        workload in arb_workload(),
        miss_milli in 0u64..500,
        seed in any::<u64>()
    ) {
        let (devices, requests) = workload;
        let cp = CpModel::LossyRound {
            miss_probability: miss_milli as f64 / 1000.0,
        };
        let fast = run(devices, requests.clone(), cp.clone(), seed, false);
        let reference = run(devices, requests, cp, seed, true);
        prop_assert_eq!(
            fast.schedule_digest, reference.schedule_digest,
            "schedules must be byte-identical at every node in every round"
        );
        prop_assert_eq!(fast.divergent_rounds, reference.divergent_rounds);
        prop_assert_eq!(&fast.trace, &reference.trace);
        prop_assert_eq!(fast.deadline_misses, reference.deadline_misses);
        prop_assert_eq!(fast.windows_served, reference.windows_served);
        prop_assert!((fast.energy_kwh - reference.energy_kwh).abs() < 1e-12);
    }

    #[test]
    fn memoized_matches_reference_under_lossy_record(
        workload in arb_workload(),
        miss_milli in 0u64..500,
        seed in any::<u64>()
    ) {
        let (devices, requests) = workload;
        let cp = CpModel::LossyRecord {
            miss_probability: miss_milli as f64 / 1000.0,
        };
        let fast = run(devices, requests.clone(), cp.clone(), seed, false);
        let reference = run(devices, requests, cp, seed, true);
        prop_assert_eq!(fast.schedule_digest, reference.schedule_digest);
        prop_assert_eq!(fast.divergent_rounds, reference.divergent_rounds);
        prop_assert_eq!(&fast.trace, &reference.trace);
    }

    #[test]
    fn memoized_matches_reference_under_ideal(
        workload in arb_workload(),
        seed in any::<u64>()
    ) {
        // Ideal CP is the maximal-collapse case (one group per round):
        // the digest equality proves N-fold grouping loses nothing.
        let (devices, requests) = workload;
        let fast = run(devices, requests.clone(), CpModel::Ideal, seed, false);
        let reference = run(devices, requests, CpModel::Ideal, seed, true);
        prop_assert_eq!(fast.schedule_digest, reference.schedule_digest);
        prop_assert_eq!(fast.divergent_rounds, 0u64);
        prop_assert_eq!(reference.divergent_rounds, 0u64);
        prop_assert_eq!(&fast.trace, &reference.trace);
    }
}
