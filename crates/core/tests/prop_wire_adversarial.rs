//! Adversarial battery of the two city wire formats: `HANFAGG1` feeder
//! records and the `HANCITY1` worker stream that frames them.
//!
//! Both decoders sit on a process boundary — the parent supervisor
//! feeds them bytes written by another process, so "malformed input"
//! is not a programming error but an expected runtime condition
//! (killed worker, version skew, corrupted pipe). The contract under
//! attack here:
//!
//! 1. **Truncation at every byte offset** of a valid stream yields a
//!    typed error (`AggregateWireError` / `MpWireError`) — never a
//!    panic, never an `Ok` with invented data. Exhaustive, not
//!    sampled: the loop cuts at every single offset.
//! 2. **Bit-flip corruption** anywhere in the stream leaves the
//!    decoder total: it returns `Ok` (the flip hit payload data) or a
//!    typed error (the flip hit structure) — never a panic, and never
//!    an unbounded allocation from a corrupted length field.
//! 3. **Trailing bytes** are never silently swallowed: a record
//!    decode reports its exact length, extra bytes inside a frame are
//!    `TrailingBytes`, bytes after the fin frame are `TrailingData`,
//!    and an oversized length prefix is `FrameTooLarge`.

use han_core::city::mp::{self, Handshake, MpWireError, HANDSHAKE_LEN, MAX_FRAME_LEN};
use han_core::city::{CitySpec, FeederAggregate};
use han_core::cp::CpModel;
use han_sim::time::SimDuration;
use han_workload::scenario::Scenario;
use proptest::prelude::*;

/// One small city whose worker stream exercises every wire feature:
/// two feeders (two record frames), two homes each, non-trivial series.
fn reference_spec() -> CitySpec {
    let template = Scenario::builder("adversarial wire home")
        .class(han_workload::fleet::DeviceClass::paper(3))
        .poisson(8.0)
        .duration(SimDuration::from_mins(20))
        .build()
        .expect("valid scenario");
    CitySpec::uniform("adversarial wire", &template, CpModel::Ideal, 2, 2).with_seed(42)
}

/// A complete valid `HANCITY1` stream (handshake + 2 frames + fin),
/// produced by the real worker entry point.
fn reference_stream() -> Vec<u8> {
    let spec = reference_spec();
    let mut stream = Vec::new();
    mp::serve_worker(&spec, 0, 1, &mut stream).expect("worker serves");
    stream
}

/// The `HANFAGG1` records inside the reference stream, re-encoded
/// standalone.
fn reference_records() -> Vec<Vec<u8>> {
    let (_, records) = mp::decode_stream(&reference_stream()).expect("valid stream");
    records.iter().map(FeederAggregate::encode).collect()
}

#[test]
fn hanfagg1_truncated_at_every_offset_is_a_typed_error() {
    for bytes in reference_records() {
        let (full, used) = FeederAggregate::decode(&bytes).expect("full record decodes");
        assert_eq!(used, bytes.len(), "decode must consume the whole record");
        for cut in 0..bytes.len() {
            match FeederAggregate::decode(&bytes[..cut]) {
                Err(_) => {} // typed — the only acceptable outcome
                Ok((got, n)) => panic!(
                    "cut at {cut}/{} decoded {n} byte(s) as feeder {} — truncation must not \
                     yield a record",
                    bytes.len(),
                    got.feeder
                ),
            }
        }
        // And the untruncated round trip is still the identity.
        assert_eq!(full.encode(), bytes);
    }
}

#[test]
fn hancity1_truncated_at_every_offset_is_a_typed_error() {
    let stream = reference_stream();
    mp::decode_stream(&stream).expect("full stream decodes");
    for cut in 0..stream.len() {
        match mp::decode_stream(&stream[..cut]) {
            Err(MpWireError::Truncated { .. }) => {}
            Err(other) => panic!("cut at {cut} must be Truncated, got {other:?}"),
            Ok(_) => panic!("cut at {cut}/{} decoded — truncation must fail", stream.len()),
        }
    }
}

#[test]
fn handshake_truncated_at_every_offset_is_a_typed_error() {
    let stream = reference_stream();
    let (handshake, used) = Handshake::decode(&stream).expect("handshake decodes");
    assert_eq!(used, HANDSHAKE_LEN);
    assert_eq!(handshake.encode(), &stream[..HANDSHAKE_LEN]);
    for cut in 0..HANDSHAKE_LEN {
        match Handshake::decode(&stream[..cut]) {
            Err(MpWireError::Truncated { .. }) => {}
            Err(other) => panic!("cut at {cut} must be Truncated, got {other:?}"),
            Ok(_) => panic!("handshake cut at {cut} must not decode"),
        }
    }
}

#[test]
fn trailing_bytes_are_never_swallowed() {
    let stream = reference_stream();

    // Bytes after the fin frame: TrailingData.
    let mut after_fin = stream.clone();
    after_fin.extend_from_slice(b"junk");
    assert!(
        matches!(
            mp::decode_stream(&after_fin),
            Err(MpWireError::TrailingData { extra: 4 })
        ),
        "bytes after fin must be TrailingData"
    );

    // Extra bytes inside a frame: the length prefix admits them, the
    // self-delimiting record exposes them as TrailingBytes.
    let record = &reference_records()[0];
    let mut padded_frame = stream[..HANDSHAKE_LEN].to_vec();
    padded_frame.extend_from_slice(&(record.len() as u32 + 3).to_le_bytes());
    padded_frame.extend_from_slice(record);
    padded_frame.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
    padded_frame.extend_from_slice(&0u32.to_le_bytes());
    assert!(
        matches!(
            mp::decode_stream(&padded_frame),
            Err(MpWireError::TrailingBytes { extra: 3 })
        ),
        "padding inside a frame must be TrailingBytes"
    );

    // A standalone record decode reports its exact length even with
    // trailing garbage — the caller decides what trailing means.
    let mut padded_record = record.clone();
    padded_record.extend_from_slice(&[0u8; 16]);
    let (_, used) = FeederAggregate::decode(&padded_record).expect("prefix decodes");
    assert_eq!(used, record.len(), "decode must not consume trailing bytes");
}

#[test]
fn oversized_and_lying_length_prefixes_are_typed() {
    // A frame claiming more than MAX_FRAME_LEN: typed, and rejected
    // *before* any allocation of that size.
    let mut huge = reference_stream()[..HANDSHAKE_LEN].to_vec();
    huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    assert!(
        matches!(
            mp::decode_stream(&huge),
            Err(MpWireError::FrameTooLarge { .. })
        ),
        "an oversized length prefix must be FrameTooLarge"
    );

    // A frame claiming (within bounds) more bytes than the stream has:
    // Truncated, with the deficit visible.
    let mut lying = reference_stream()[..HANDSHAKE_LEN].to_vec();
    lying.extend_from_slice(&1_000u32.to_le_bytes());
    lying.extend_from_slice(&[0u8; 10]);
    assert!(
        matches!(
            mp::decode_stream(&lying),
            Err(MpWireError::Truncated {
                needed: 1_000,
                have: 10
            })
        ),
        "a lying length prefix must be Truncated"
    );

    // A wrong magic is BadMagic, not a guess.
    let mut wrong_magic = reference_stream();
    wrong_magic[0] ^= 0xFF;
    assert!(
        matches!(mp::decode_stream(&wrong_magic), Err(MpWireError::BadMagic)),
        "a corrupted magic must be BadMagic"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 64 } else { 512 }))]

    /// Property 2 (HANFAGG1): a single flipped bit anywhere in a record
    /// leaves the decoder total — `Ok` or typed error, never a panic,
    /// and a successful decode still consumes at most the buffer.
    #[test]
    fn hanfagg1_survives_any_single_bit_flip(
        record_pick in 0usize..2,
        byte in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let records = reference_records();
        let mut bytes = records[record_pick % records.len()].clone();
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        match FeederAggregate::decode(&bytes) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(_) => {} // typed — acceptable
        }
    }

    /// Property 2 (HANCITY1): a single flipped bit anywhere in a worker
    /// stream leaves `decode_stream` total.
    #[test]
    fn hancity1_survives_any_single_bit_flip(
        byte in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let mut stream = reference_stream();
        let byte = byte % stream.len();
        stream[byte] ^= 1 << bit;
        // Totality is the assertion. A flip in the handshake's own
        // claim fields (worker, partition, fingerprint) still decodes —
        // cross-validating those against the assignment is supervisor
        // policy (`run_city_mp`), deliberately not wire shape.
        let _ = mp::decode_stream(&stream);
    }

    /// Property 2, compounding: up to 8 random flips at once.
    #[test]
    fn hancity1_survives_multi_bit_corruption(
        flips in prop::collection::vec((0usize..100_000, 0u8..8), 1..9),
    ) {
        let mut stream = reference_stream();
        for (byte, bit) in flips {
            let byte = byte % stream.len();
            stream[byte] ^= 1 << bit;
        }
        // Totality is the whole assertion: no panic, no abort.
        let _ = mp::decode_stream(&stream);
    }
}
