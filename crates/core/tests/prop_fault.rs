//! Property tests of the fault-injection plane.
//!
//! Four contracts from the fault plane's design are pinned here:
//!
//! 1. **Inertness** — attaching an *empty* [`FaultPlan`] is bit-identical
//!    to running with no fault plane at all: same digest, trace, CP
//!    statistics and event count.
//! 2. **Backend identity** — under a *random* fault plan the synchronous
//!    round loop and the event backend stay bit-identical (the fault
//!    phase is a first-class `CpEvent::Fault` on the engine, fired at
//!    exactly the round-loop instants).
//! 3. **Obligations held** — minDCD-per-maxDCP never breaks under any
//!    churn/outage timeline: a down Device Interface guards its own
//!    obligations locally, so deadline misses stay at zero.
//! 4. **Checkpoint round-trip** — kill the simulation at a random round,
//!    serialize the checkpoint to bytes, parse it back, resume in a
//!    rebuilt simulation: the resumed run is bit-identical to the
//!    uninterrupted one.
//!
//! Case counts scale with the build profile: the debug run (tier-1
//! `cargo test`) keeps a quick battery, the dedicated release CI job
//! runs the full one.

use han_core::cp::event::EngineKind;
use han_core::cp::CpModel;
use han_core::fault::{FaultEvent, FaultPlan};
use han_core::simulation::{
    HanSimulation, SimulationConfig, SimulationOutcome, Strategy as SimStrategy,
};
use han_core::Checkpoint;
use han_device::appliance::{ApplianceKind, DeviceId};
use han_device::duty_cycle::DutyCycleConstraints;
use han_device::request::Request;
use han_sim::time::{SimDuration, SimTime};
use han_workload::fleet::{DeviceClass, FleetSpec};
use proptest::prelude::*;

/// Debug runs (tier-1) keep the battery quick; the release CI job runs
/// the full width.
const CASES: u32 = if cfg!(debug_assertions) { 6 } else { 24 };

/// Horizon of every run in this file, minutes.
const MINUTES: u64 = 40;

/// Type-2 kinds a class can be drawn as.
const TYPE2_KINDS: [ApplianceKind; 4] = [
    ApplianceKind::AirConditioner,
    ApplianceKind::RoomHeater,
    ApplianceKind::WaterHeater,
    ApplianceKind::Fridge,
];

fn build(
    fleet: FleetSpec,
    requests: Vec<Request>,
    cp: CpModel,
    seed: u64,
    engine: EngineKind,
    faults: &FaultPlan,
) -> HanSimulation {
    let config = SimulationConfig {
        fleet,
        duration: SimDuration::from_mins(MINUTES),
        round_period: SimDuration::from_secs(2),
        strategy: SimStrategy::coordinated(),
        cp,
        engine,
        seed,
    };
    let mut sim = HanSimulation::new(config, requests).expect("valid config");
    sim.set_faults(faults.clone()).expect("plan fits the fleet");
    sim
}

fn run(
    fleet: FleetSpec,
    requests: Vec<Request>,
    cp: CpModel,
    seed: u64,
    engine: EngineKind,
    faults: &FaultPlan,
) -> SimulationOutcome {
    build(fleet, requests, cp, seed, engine, faults).run()
}

prop_compose! {
    /// A random heterogeneous fleet — 3..8 devices split into up to two
    /// classes — plus up to one request per device inside the first 15
    /// minutes, so windows are in flight while faults land.
    fn arb_fleet_workload()(
        devices in 3usize..8,
        split in 1usize..8,
        kinds in prop::collection::vec(0..TYPE2_KINDS.len(), 2..3),
        power_deci in prop::collection::vec(1u32..40, 2..3),
        dcd_mins in prop::collection::vec(5u64..14, 2..3),
        specs in prop::collection::btree_map(0u32..8, 0u64..15, 1..8)
    ) -> (FleetSpec, Vec<Request>) {
        let first = split.min(devices - 1).max(1);
        let sizes = if first < devices {
            vec![first, devices - first]
        } else {
            vec![devices]
        };
        let fleet = FleetSpec::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &count)| {
                    let dcd = SimDuration::from_mins(dcd_mins[i % dcd_mins.len()]);
                    DeviceClass::new(
                        format!("class {i}"),
                        TYPE2_KINDS[kinds[i % kinds.len()]],
                        f64::from(power_deci[i % power_deci.len()]) / 10.0,
                        DutyCycleConstraints::new(dcd, dcd + dcd).expect("dcd <= dcp"),
                        count,
                    )
                })
                .collect(),
        )
        .expect("valid fleet");
        let requests = specs
            .into_iter()
            .map(|(slot, minute)| {
                Request::new(DeviceId(slot % devices as u32), SimTime::from_mins(minute))
            })
            .collect();
        (fleet, requests)
    }
}

/// A fleet-independent fault spec: churn entries `(node, minute, down?)`
/// and outage windows `(from, length)` in minutes. Node indices are taken
/// modulo the fleet size by [`plan_for`].
type FaultSpec = (Vec<(usize, u64, u8)>, Vec<(u64, u64)>);

prop_compose! {
    /// Up to three down/up churn events (any interleaving — latest-wins
    /// semantics make every combination legal) and up to two correlated
    /// CP outage windows, all inside the simulated horizon.
    fn arb_fault_spec()(
        churn in prop::collection::vec((0usize..8, 1u64..MINUTES, 0u8..2), 0..4),
        outages in prop::collection::vec((1u64..MINUTES, 1u64..6), 0..3)
    ) -> FaultSpec {
        (churn, outages)
    }
}

/// Materializes a [`FaultSpec`] against a concrete fleet size.
fn plan_for(devices: usize, spec: &FaultSpec) -> FaultPlan {
    let (churn, outages) = spec;
    let mut events = Vec::new();
    for &(node, minute, down) in churn {
        let at = SimTime::from_mins(minute);
        let node = node % devices;
        events.push(if down == 1 {
            FaultEvent::NodeDown { at, node }
        } else {
            FaultEvent::NodeUp { at, node }
        });
    }
    for &(from, len) in outages {
        events.push(FaultEvent::CpOutage {
            from: SimTime::from_mins(from),
            until: SimTime::from_mins(from + len),
        });
    }
    FaultPlan::from_events(events).expect("windows are non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// (a) The empty plan is inert: bit-identical to no fault plane.
    #[test]
    fn empty_plan_is_bit_identical_to_baseline(
        workload in arb_fleet_workload(),
        miss_milli in 0u64..500,
        seed in any::<u64>()
    ) {
        let (fleet, requests) = workload;
        let cp = CpModel::LossyRecord {
            miss_probability: miss_milli as f64 / 1000.0,
        };
        for engine in [EngineKind::Round, EngineKind::Event] {
            let plain = {
                let config = SimulationConfig {
                    fleet: fleet.clone(),
                    duration: SimDuration::from_mins(MINUTES),
                    round_period: SimDuration::from_secs(2),
                    strategy: SimStrategy::coordinated(),
                    cp: cp.clone(),
                    engine,
                    seed,
                };
                HanSimulation::new(config, requests.clone())
                    .expect("valid config")
                    .run()
            };
            let empty = run(
                fleet.clone(),
                requests.clone(),
                cp.clone(),
                seed,
                engine,
                &FaultPlan::empty(),
            );
            prop_assert_eq!(empty.schedule_digest, plain.schedule_digest);
            prop_assert_eq!(&empty.trace, &plain.trace);
            prop_assert_eq!(empty.divergent_rounds, plain.divergent_rounds);
            prop_assert_eq!(empty.deadline_misses, plain.deadline_misses);
            prop_assert_eq!(
                empty.events, plain.events,
                "an empty plan must not schedule a single extra event"
            );
            prop_assert_eq!(
                format!("{:?}", empty.cp),
                format!("{:?}", plain.cp),
                "CP statistics must be untouched"
            );
            prop_assert!(empty.resilience.is_quiet());
        }
    }

    /// (b) Round loop and event backend stay bit-identical under random
    /// fault plans (churn + outages on a lossy CP).
    #[test]
    fn backends_identical_under_random_fault_plans(
        workload in arb_fleet_workload(),
        spec in arb_fault_spec(),
        miss_milli in 0u64..500,
        seed in any::<u64>()
    ) {
        let (fleet, requests) = workload;
        let faults = plan_for(fleet.device_count(), &spec);
        let cp = CpModel::LossyRecord {
            miss_probability: miss_milli as f64 / 1000.0,
        };
        let round = run(
            fleet.clone(),
            requests.clone(),
            cp.clone(),
            seed,
            EngineKind::Round,
            &faults,
        );
        let event = run(fleet, requests, cp, seed, EngineKind::Event, &faults);
        prop_assert_eq!(
            event.schedule_digest, round.schedule_digest,
            "fault phases must fire at identical instants on both backends"
        );
        prop_assert_eq!(&event.trace, &round.trace);
        prop_assert_eq!(event.divergent_rounds, round.divergent_rounds);
        prop_assert_eq!(event.deadline_misses, round.deadline_misses);
        prop_assert_eq!(event.windows_served, round.windows_served);
        prop_assert_eq!(
            format!("{:?}", event.cp),
            format!("{:?}", round.cp)
        );
        prop_assert_eq!(&event.resilience, &round.resilience);
        if !faults.is_empty() {
            prop_assert!(
                event.events > event.rounds * 4,
                "an active plan fires one fault event per round"
            );
        }
    }

    /// (c) minDCD-per-maxDCP holds under ANY fault plan: a down DI keeps
    /// guarding its obligations locally, so churn and outages never cost
    /// a deadline.
    #[test]
    fn obligations_hold_under_arbitrary_churn(
        workload in arb_fleet_workload(),
        spec in arb_fault_spec(),
        seed in any::<u64>()
    ) {
        let (fleet, requests) = workload;
        let faults = plan_for(fleet.device_count(), &spec);
        let outcome = run(
            fleet,
            requests,
            CpModel::Ideal,
            seed,
            EngineKind::Round,
            &faults,
        );
        prop_assert_eq!(
            outcome.deadline_misses, 0,
            "faults degrade agreement, never obligations (plan: {:?})",
            faults
        );
        prop_assert_eq!(outcome.resilience.misses_while_down, 0);
        prop_assert_eq!(outcome.resilience.misses_during_outage, 0);
    }

    /// (d) Kill-restore-resume is bit-identical to the uninterrupted run,
    /// through the full byte codec, at an arbitrary kill round.
    #[test]
    fn checkpoint_restore_round_trips(
        workload in arb_fleet_workload(),
        spec in arb_fault_spec(),
        miss_milli in 0u64..400,
        kill_frac in 0u64..100,
        seed in any::<u64>()
    ) {
        let (fleet, requests) = workload;
        let faults = plan_for(fleet.device_count(), &spec);
        let cp = CpModel::LossyRound {
            miss_probability: miss_milli as f64 / 1000.0,
        };
        let baseline = run(
            fleet.clone(),
            requests.clone(),
            cp.clone(),
            seed,
            EngineKind::Round,
            &faults,
        );
        // Kill anywhere in the timeline (rounds are 2 s over MINUTES).
        let total_rounds = MINUTES * 30 + 1;
        let kill_round = total_rounds * kill_frac / 100;
        let (full, checkpoint) = build(
            fleet.clone(),
            requests.clone(),
            cp.clone(),
            seed,
            EngineKind::Round,
            &faults,
        )
        .run_checkpointed(kill_round);
        prop_assert_eq!(
            full.schedule_digest, baseline.schedule_digest,
            "snapshotting mid-run must not perturb the run itself"
        );
        // The process "dies" here: all that survives is the byte string.
        let bytes = checkpoint.to_bytes();
        let restored = Checkpoint::from_bytes(&bytes).expect("own bytes parse back");
        prop_assert_eq!(restored.round(), kill_round);
        let resumed = build(fleet, requests, cp, seed, EngineKind::Round, &faults)
            .resume(&restored)
            .expect("configuration fingerprints match");
        prop_assert_eq!(
            resumed.schedule_digest, baseline.schedule_digest,
            "resumed run must re-issue byte-identical schedules"
        );
        prop_assert_eq!(&resumed.trace, &baseline.trace);
        prop_assert_eq!(resumed.deadline_misses, baseline.deadline_misses);
        prop_assert_eq!(resumed.windows_served, baseline.windows_served);
        prop_assert_eq!(resumed.divergent_rounds, baseline.divergent_rounds);
        prop_assert_eq!(
            format!("{:?}", resumed.cp),
            format!("{:?}", baseline.cp),
            "CP statistics must survive the round trip exactly"
        );
        prop_assert_eq!(&resumed.resilience, &baseline.resilience);
    }
}
