//! Differential property battery of the city-scale sharded engine.
//!
//! The city layer's headline contract, pinned property by property:
//!
//! 1. **Shared-heap ≡ per-home.** A city of one feeder on one shard —
//!    every home interleaved on one shared engine — must reproduce the
//!    same homes run through `Neighborhood::run` (the one-engine-per-home
//!    path) exactly: per-home schedule digests, the feeder aggregate
//!    series, deadline misses and energy, under ideal, lossy and
//!    packet-level CPs and under fault plans.
//! 2. **Shard-count invariance.** The full `CityReport` — every feeder
//!    aggregate, every substation summary, every digest — compares equal
//!    across `shards ∈ {1, 2, 4}` on random heterogeneous cities.
//! 3. **The reduction tree is a faithful sum.** Each feeder aggregate's
//!    series equals the recomputed elementwise sum of its homes' per-home
//!    series (from the oracle path), and the city series equals the sum
//!    of the feeder series; wire encode → decode is the identity.

use han_core::city::{City, CitySpec, FeederAggregate};
use han_core::cp::CpModel;
use han_core::fault::{FaultEvent, FaultPlan};
use han_sim::time::{SimDuration, SimTime};
use han_workload::scenario::Scenario;
use proptest::prelude::*;

/// Horizon of every generated home (kept small: each proptest case runs
/// dozens of full two-strategy simulations).
const MINUTES: u64 = 24;

/// A small home template: the paper fleet trimmed to `devices` devices
/// at a Poisson arrival rate.
fn template(devices: usize, rate_per_hour: f64) -> Scenario {
    Scenario::builder("prop city home")
        .class(han_workload::fleet::DeviceClass::paper(devices))
        .poisson(rate_per_hour)
        .duration(SimDuration::from_mins(MINUTES))
        .build()
        .expect("valid scenario")
}

/// The three CP families the contract quantifies over.
fn cp_for(pick: u8) -> CpModel {
    match pick % 3 {
        0 => CpModel::Ideal,
        1 => CpModel::LossyRound {
            miss_probability: 0.2,
        },
        _ => CpModel::paper_packet(11),
    }
}

/// A shared fault plan: one node-churn pair and one CP outage window,
/// all inside the horizon. Node indices are valid for any fleet the
/// generator emits (≥ 3 devices).
fn faults_for(active: bool, node: usize, down_min: u64, outage_min: u64) -> FaultPlan {
    if !active {
        return FaultPlan::empty();
    }
    FaultPlan::from_events(vec![
        FaultEvent::NodeDown {
            at: SimTime::from_mins(down_min),
            node,
        },
        FaultEvent::NodeUp {
            at: SimTime::from_mins(down_min + 8),
            node,
        },
        FaultEvent::CpOutage {
            from: SimTime::from_mins(outage_min),
            until: SimTime::from_mins(outage_min + 3),
        },
    ])
    .expect("valid plan")
}

prop_compose! {
    /// A random heterogeneous city spec: 1–4 feeders × 1–3 homes, a
    /// 1–3-template mix of differing fleet sizes and arrival rates, one
    /// of the three CP families, optionally a fault plan.
    fn arb_city()(
        feeders in 1usize..5,
        homes_per_feeder in 1usize..3,
        mix in prop::collection::vec((3usize..5, 4u32..20), 1..4),
        cp_pick in 0u8..3,
        seed in 0u64..1_000,
        faulted in any::<bool>(),
        fault_node in 0usize..3,
        down_min in 2u64..12,
        outage_min in 2u64..18,
    ) -> CitySpec {
        let templates = mix
            .into_iter()
            .map(|(devices, rate)| template(devices, f64::from(rate)))
            .collect();
        CitySpec::uniform("prop city", &template(3, 6.0), cp_for(cp_pick), feeders, homes_per_feeder)
            .with_templates(templates)
            .with_seed(seed)
            .with_faults(faults_for(faulted, fault_node, down_min, outage_min))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 3 } else { 16 }))]

    /// Property 1: shared-heap ≡ per-home, one feeder at a time.
    #[test]
    fn city_matches_neighborhood_oracle_per_home(spec in arb_city()) {
        let spec = spec.with_shards(1);
        let report = City::new(spec.clone()).expect("valid spec").run().expect("runs");
        let mut digest_cursor = report.home_digests.iter();
        for feeder in 0..spec.feeders {
            let oracle = spec
                .feeder_neighborhood(feeder)
                .expect("valid feeder")
                .run()
                .expect("oracle runs");
            let agg = &report.feeders[feeder];
            prop_assert_eq!(agg.homes as usize, oracle.homes.len());
            for (slot, home) in oracle.homes.iter().enumerate() {
                let digest = digest_cursor.next().expect("digest per home");
                prop_assert_eq!(digest.home, spec.home_id(feeder, slot));
                prop_assert_eq!(
                    digest.coordinated,
                    home.comparison.coordinated.outcome.schedule_digest,
                    "home {}/{} digest diverged from its solo run", feeder, slot
                );
                prop_assert_eq!(
                    digest.uncoordinated,
                    home.comparison.uncoordinated.outcome.schedule_digest
                );
            }
            // The feeder aggregate is the oracle's feeder aggregate.
            prop_assert_eq!(&agg.samples_uncoordinated, &oracle.feeder_samples_uncoordinated);
            prop_assert_eq!(&agg.samples_coordinated, &oracle.feeder_samples_coordinated);
            let misses: u64 = oracle
                .homes
                .iter()
                .map(|h| u64::from(h.comparison.coordinated.outcome.deadline_misses))
                .sum();
            prop_assert_eq!(agg.deadline_misses, misses);
            let energy: f64 = oracle
                .homes
                .iter()
                .map(|h| h.comparison.coordinated.outcome.energy_kwh)
                .sum();
            prop_assert!((agg.energy_coordinated_kwh - energy).abs() < 1e-9);
        }
    }

    /// Property 2: the report is invariant in the shard count.
    #[test]
    fn report_is_invariant_in_shard_count(spec in arb_city()) {
        let one = City::new(spec.clone().with_shards(1)).expect("valid").run().expect("runs");
        let mut seen = vec![1usize];
        for shards in [2usize, 4] {
            let k = shards.min(spec.feeders);
            if seen.contains(&k) {
                continue; // a narrow city clamps 2 and 4 to the same K
            }
            seen.push(k);
            let sharded = City::new(spec.clone().with_shards(k)).expect("valid").run().expect("runs");
            prop_assert_eq!(&one, &sharded, "report changed between 1 and {} shard(s)", k);
        }
    }

    /// Property 3: every level of the tree is a faithful elementwise sum,
    /// and the wire format round-trips every aggregate.
    #[test]
    fn reduction_tree_sums_faithfully(spec in arb_city()) {
        let report = City::new(spec.clone()).expect("valid").run().expect("runs");
        // Feeder level: aggregate == recomputed sum of the oracle's
        // per-home series.
        for (feeder, agg) in report.feeders.iter().enumerate() {
            let oracle = spec
                .feeder_neighborhood(feeder)
                .expect("valid feeder")
                .run()
                .expect("oracle runs");
            let len = agg.samples_coordinated.len();
            let mut expected = vec![0.0f64; len];
            for home in &oracle.homes {
                for (sum, &kw) in expected.iter_mut().zip(&home.comparison.coordinated.samples) {
                    *sum += kw;
                }
            }
            prop_assert_eq!(&agg.samples_coordinated, &expected);
            // Wire round trip is the identity on the aggregate.
            let bytes = agg.encode();
            let (back, used) = FeederAggregate::decode(&bytes).expect("round trip");
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(&back, agg);
        }
        // City level: city series == sum of feeder series.
        let len = report.samples_coordinated.len();
        let mut expected = vec![0.0f64; len];
        for agg in &report.feeders {
            for (sum, &kw) in expected.iter_mut().zip(&agg.samples_coordinated) {
                *sum += kw;
            }
        }
        prop_assert_eq!(&report.samples_coordinated, &expected);
        prop_assert_eq!(report.homes, spec.home_count());
        prop_assert_eq!(report.devices, spec.device_count());
    }
}
