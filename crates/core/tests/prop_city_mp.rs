//! Differential property battery of the multi-process city runner.
//!
//! The cross-process half of the city contract, pinned property by
//! property on random heterogeneous cities (the same generator as the
//! in-process battery: 1–4 feeders × 1–3 homes, mixed templates, the
//! three CP families, optional fault plans):
//!
//! 1. **Process boundary ≡ shared heap.** The `CityReport` assembled
//!    from worker streams over real OS pipes is `PartialEq`-identical
//!    to in-process `City::run` — every feeder aggregate, substation
//!    summary, per-home digest, and f64 sample — and **invariant in the
//!    worker count** (W ∈ {1, 2, 4}).
//! 2. **No partial results, ever.** A worker stream truncated at *any*
//!    byte offset produces a typed `WorkerError` from the supervisor —
//!    never a report, never a panic, never a hang (the battery's own
//!    deadline enforces the last).
//! 3. **Observability coheres.** The supervisor's frame counter equals
//!    the feeder count, the worker gauge equals the fleet size, and the
//!    city round counter matches the report — and observation never
//!    perturbs the report.
//!
//! The workers here run [`mp::serve_worker`] in threads over
//! [`std::io::pipe`] — the identical protocol code the re-exec'd
//! `hansim city-worker` children run, minus the exec, which keeps the
//! battery fast enough to quantify over random cities.

use han_core::city::mp::{self, MpOptions, WorkerConnection, WorkerError, WorkerTask};
use han_core::city::{City, CitySpec};
use han_core::cp::CpModel;
use han_core::fault::{FaultEvent, FaultPlan};
use han_obs::{Counter, Gauge, Obs, ObsConfig, ObsSink};
use han_sim::time::{SimDuration, SimTime};
use han_workload::scenario::Scenario;
use proptest::prelude::*;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Horizon of every generated home (each case runs several full
/// two-strategy city simulations).
const MINUTES: u64 = 24;

/// Generous read deadline: pipe workers stream within milliseconds, so
/// this only bounds a genuine supervisor hang.
const DEADLINE: Duration = Duration::from_secs(120);

fn template(devices: usize, rate_per_hour: f64) -> Scenario {
    Scenario::builder("prop city mp home")
        .class(han_workload::fleet::DeviceClass::paper(devices))
        .poisson(rate_per_hour)
        .duration(SimDuration::from_mins(MINUTES))
        .build()
        .expect("valid scenario")
}

fn cp_for(pick: u8) -> CpModel {
    match pick % 3 {
        0 => CpModel::Ideal,
        1 => CpModel::LossyRound {
            miss_probability: 0.2,
        },
        _ => CpModel::paper_packet(11),
    }
}

fn faults_for(active: bool, node: usize, down_min: u64, outage_min: u64) -> FaultPlan {
    if !active {
        return FaultPlan::empty();
    }
    FaultPlan::from_events(vec![
        FaultEvent::NodeDown {
            at: SimTime::from_mins(down_min),
            node,
        },
        FaultEvent::NodeUp {
            at: SimTime::from_mins(down_min + 8),
            node,
        },
        FaultEvent::CpOutage {
            from: SimTime::from_mins(outage_min),
            until: SimTime::from_mins(outage_min + 3),
        },
    ])
    .expect("valid plan")
}

prop_compose! {
    /// The in-process battery's city generator, verbatim: the two
    /// suites must quantify over the same population for "mp ≡
    /// in-process" to mean anything.
    fn arb_city()(
        feeders in 1usize..5,
        homes_per_feeder in 1usize..3,
        mix in prop::collection::vec((3usize..5, 4u32..20), 1..4),
        cp_pick in 0u8..3,
        seed in 0u64..1_000,
        faulted in any::<bool>(),
        fault_node in 0usize..3,
        down_min in 2u64..12,
        outage_min in 2u64..18,
    ) -> CitySpec {
        let templates = mix
            .into_iter()
            .map(|(devices, rate)| template(devices, f64::from(rate)))
            .collect();
        CitySpec::uniform("prop city mp", &template(3, 6.0), cp_for(cp_pick), feeders, homes_per_feeder)
            .with_templates(templates)
            .with_seed(seed)
            .with_faults(faults_for(faulted, fault_node, down_min, outage_min))
    }
}

/// A launcher that runs the real worker entry point in a thread over an
/// OS pipe — the process transport minus the exec.
fn pipe_launcher(
    spec: CitySpec,
) -> impl FnMut(&WorkerTask) -> Result<WorkerConnection, String> {
    move |task| {
        let (reader, mut writer) = std::io::pipe().map_err(|e| e.to_string())?;
        let spec = spec.clone();
        let (worker, workers) = (task.worker, task.workers);
        std::thread::spawn(move || {
            let _ = mp::serve_worker(&spec, worker, workers, &mut writer);
        });
        Ok(WorkerConnection::new(reader))
    }
}

/// A launcher that replays each worker's exact stream cut off after
/// `keep` bytes (clamped per worker), then hangs up.
fn truncating_launcher(
    spec: CitySpec,
    keep: usize,
) -> impl FnMut(&WorkerTask) -> Result<WorkerConnection, String> {
    move |task| {
        let mut full = Vec::new();
        mp::serve_worker(&spec, task.worker, task.workers, &mut full)
            .map_err(|e| e.to_string())?;
        let cut = keep.min(full.len().saturating_sub(1));
        let (reader, mut writer) = std::io::pipe().map_err(|e| e.to_string())?;
        std::thread::spawn(move || {
            let _ = writer.write_all(&full[..cut]);
        });
        Ok(WorkerConnection::new(reader))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 3 } else { 16 }))]

    /// Property 1: the multi-process report equals in-process `run` and
    /// is invariant in the worker count.
    #[test]
    fn mp_report_equals_in_process_for_every_worker_count(spec in arb_city()) {
        let in_process = City::new(spec.clone()).expect("valid").run().expect("runs");
        let mut seen = Vec::new();
        for workers in [1usize, 2, 4] {
            let w = workers.min(spec.feeders);
            if seen.contains(&w) {
                continue; // a narrow city clamps 2 and 4 to the same W
            }
            seen.push(w);
            let mut launch = pipe_launcher(spec.clone());
            let (report, stats) = mp::run_city_mp(
                &spec,
                &MpOptions::new(w).with_deadline(DEADLINE),
                &Obs::off(),
                &mut launch,
            )
            .expect("fleet runs");
            prop_assert_eq!(
                &report, &in_process,
                "report changed between in-process and {} worker(s)", w
            );
            prop_assert_eq!(stats.frames as usize, spec.feeders);
            prop_assert_eq!(stats.workers, w);
            prop_assert_eq!(stats.restarts, 0);
        }
    }

    /// Property 2: a stream cut at any byte offset is a typed error —
    /// no report, no panic, no hang.
    #[test]
    fn truncated_worker_stream_is_always_a_typed_error(
        spec in arb_city(),
        keep in 0usize..100_000,
    ) {
        let workers = 2usize.min(spec.feeders);
        let mut launch = truncating_launcher(spec.clone(), keep);
        let err = mp::run_city_mp(
            &spec,
            &MpOptions::new(workers).with_deadline(DEADLINE),
            &Obs::off(),
            &mut launch,
        )
        .expect_err("a truncated stream must never yield a report");
        prop_assert!(
            matches!(
                err,
                WorkerError::Died { .. } | WorkerError::Wire { .. }
            ),
            "unexpected error class for cut at {}: {:?}", keep, err
        );
    }

    /// Property 3: supervisor metrics cohere with the report, and
    /// observing changes nothing.
    #[test]
    fn mp_obs_counters_cohere_and_do_not_perturb(spec in arb_city()) {
        let workers = 2usize.min(spec.feeders);
        let blind = {
            let mut launch = pipe_launcher(spec.clone());
            mp::run_city_mp(
                &spec,
                &MpOptions::new(workers).with_deadline(DEADLINE),
                &Obs::off(),
                &mut launch,
            )
            .expect("fleet runs")
            .0
        };
        let sink = Arc::new(ObsSink::new(ObsConfig::default()));
        let obs = Obs::new(sink.clone());
        let mut launch = pipe_launcher(spec.clone());
        let (observed, stats) = mp::run_city_mp(
            &spec,
            &MpOptions::new(workers).with_deadline(DEADLINE),
            &obs,
            &mut launch,
        )
        .expect("fleet runs");
        prop_assert_eq!(&observed, &blind, "observation perturbed the report");
        let r = sink.registry();
        prop_assert_eq!(r.counter(Counter::CityMpFrames), spec.feeders as u64);
        prop_assert_eq!(r.counter(Counter::CityMpFrames), stats.frames);
        prop_assert_eq!(r.counter(Counter::CityMpPayloadBytes), stats.payload_bytes);
        prop_assert!(stats.payload_bytes > 0, "frames cannot be empty");
        prop_assert_eq!(r.counter(Counter::CityMpRestarts), 0);
        prop_assert_eq!(r.gauge(Gauge::CityMpWorkers), workers as u64);
        prop_assert_eq!(r.counter(Counter::CityRounds), observed.rounds);
        let imbalance = r.gauge(Gauge::CityMpWallImbalancePermille);
        prop_assert!(
            imbalance >= 1 && imbalance <= 1000,
            "wall imbalance permille out of range: {}", imbalance
        );
    }
}
