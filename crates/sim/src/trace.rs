//! Lightweight simulation tracing.
//!
//! Components record [`TraceEvent`]s into a [`Trace`] buffer; tests and
//! harnesses query or print them afterwards. Tracing is structured
//! (category plus message) rather than free-form logging so that tests can
//! assert on occurrence counts cheaply.
//!
//! # Examples
//!
//! ```
//! use han_sim::time::SimTime;
//! use han_sim::trace::{Trace, TraceLevel};
//!
//! let mut trace = Trace::new(TraceLevel::Info);
//! trace.info(SimTime::from_secs(1), "cp", "round 1 complete");
//! trace.debug(SimTime::from_secs(1), "cp", "ignored at info level");
//! assert_eq!(trace.count_category("cp"), 1);
//! ```

use std::fmt;

use crate::time::SimTime;

/// Severity of a trace event, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume diagnostic detail (per-packet, per-slot).
    Debug,
    /// Normal operational milestones (per-round, per-schedule).
    Info,
    /// Unexpected but tolerated conditions (lost round, stale state).
    Warn,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceLevel::Debug => write!(f, "DEBUG"),
            TraceLevel::Info => write!(f, "INFO"),
            TraceLevel::Warn => write!(f, "WARN"),
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation instant at which the event was recorded.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Short stable category tag (e.g. `"cp"`, `"glossy"`, `"sched"`).
    pub category: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.level, self.category, self.message
        )
    }
}

/// A bounded in-memory trace buffer with a minimum severity filter.
#[derive(Debug, Clone)]
pub struct Trace {
    min_level: TraceLevel,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(TraceLevel::Info)
    }
}

impl Trace {
    /// Default maximum number of retained events.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a trace retaining events at or above `min_level`.
    pub fn new(min_level: TraceLevel) -> Self {
        Trace {
            min_level,
            events: Vec::new(),
            capacity: Self::DEFAULT_CAPACITY,
            dropped: 0,
        }
    }

    /// Creates a trace with an explicit retention capacity.
    ///
    /// Once full, further events are counted in [`Trace::dropped`] rather
    /// than stored.
    pub fn with_capacity(min_level: TraceLevel, capacity: usize) -> Self {
        Trace {
            min_level,
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event if it passes the severity filter.
    pub fn record(
        &mut self,
        level: TraceLevel,
        at: SimTime,
        category: &'static str,
        message: impl Into<String>,
    ) {
        if level < self.min_level {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            at,
            level,
            category,
            message: message.into(),
        });
    }

    /// Records a debug-level event.
    pub fn debug(&mut self, at: SimTime, category: &'static str, message: impl Into<String>) {
        self.record(TraceLevel::Debug, at, category, message);
    }

    /// Records an info-level event.
    pub fn info(&mut self, at: SimTime, category: &'static str, message: impl Into<String>) {
        self.record(TraceLevel::Info, at, category, message);
    }

    /// Records a warn-level event.
    pub fn warn(&mut self, at: SimTime, category: &'static str, message: impl Into<String>) {
        self.record(TraceLevel::Warn, at, category, message);
    }

    /// Returns all retained events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Returns how many events were discarded due to the capacity limit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Counts retained events in `category`.
    pub fn count_category(&self, category: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.category == category)
            .count()
    }

    /// Counts retained events at exactly `level`.
    pub fn count_level(&self, level: TraceLevel) -> usize {
        self.events.iter().filter(|e| e.level == level).count()
    }

    /// Iterates events in `category`.
    pub fn iter_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Clears all retained events and the dropped counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_below_min_level() {
        let mut t = Trace::new(TraceLevel::Info);
        t.debug(SimTime::ZERO, "a", "dropped");
        t.info(SimTime::ZERO, "a", "kept");
        t.warn(SimTime::ZERO, "b", "kept");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.count_level(TraceLevel::Warn), 1);
        assert_eq!(t.count_level(TraceLevel::Debug), 0);
    }

    #[test]
    fn capacity_drops_and_counts() {
        let mut t = Trace::with_capacity(TraceLevel::Debug, 2);
        for i in 0..5 {
            t.info(SimTime::from_secs(i), "x", format!("e{i}"));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn category_queries() {
        let mut t = Trace::new(TraceLevel::Debug);
        t.info(SimTime::ZERO, "cp", "r1");
        t.info(SimTime::from_secs(2), "cp", "r2");
        t.info(SimTime::from_secs(2), "ep", "apply");
        assert_eq!(t.count_category("cp"), 2);
        assert_eq!(t.iter_category("ep").count(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let ev = TraceEvent {
            at: SimTime::from_secs(1),
            level: TraceLevel::Warn,
            category: "cp",
            message: "lost round".into(),
        };
        let s = ev.to_string();
        assert!(s.contains("WARN") && s.contains("cp") && s.contains("lost round"));
    }
}
