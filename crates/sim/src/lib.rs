//! # han-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the execution substrate for the whole `smart-han`
//! workspace: a minimal, fully deterministic discrete-event simulator that
//! stands in for the physical FlockLab testbed clock used in the paper
//! *"Collaborative Load Management in Smart Home Area Network"*
//! (Debadarshini & Saha, ICDCS 2022).
//!
//! It provides:
//!
//! * [`time`] — microsecond-resolution [`time::SimTime`] / [`time::SimDuration`]
//!   newtypes with checked arithmetic;
//! * [`engine`] — the event queue and dispatch loop ([`engine::Engine`],
//!   [`engine::World`]) with strict time ordering and FIFO tie-breaking;
//! * [`rng`] — self-contained xoshiro256++ [`rng::DetRng`] with named
//!   sub-streams for reproducible experiments;
//! * [`trace`] — structured trace buffer for tests and harnesses.
//!
//! # Examples
//!
//! A periodic process counting its own ticks:
//!
//! ```
//! use han_sim::engine::{Engine, World};
//! use han_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Default)]
//! struct Ticker {
//!     ticks: u32,
//! }
//!
//! impl World for Ticker {
//!     type Event = ();
//!     fn handle(&mut self, engine: &mut Engine<()>, _at: SimTime, _ev: ()) {
//!         self.ticks += 1;
//!         engine.schedule_in(SimDuration::from_secs(2), ());
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let mut ticker = Ticker::default();
//! engine.schedule_at(SimTime::ZERO, ());
//! engine.run_until(&mut ticker, SimTime::from_secs(10));
//! assert_eq!(ticker.ticks, 6); // t = 0, 2, 4, 6, 8, 10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::{Engine, EventId, World};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceLevel};
