//! Simulation time types.
//!
//! All simulation time is measured in **microseconds** since the start of the
//! simulation. A microsecond tick is fine enough to model IEEE 802.15.4
//! symbol timing (16 µs per symbol) while a `u64` still covers ~584,000 years
//! of simulated time, far beyond the 350-minute experiments in the paper.
//!
//! Two newtypes are provided ([C-NEWTYPE]):
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since start.
///
/// # Examples
///
/// ```
/// use han_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
///
/// # Examples
///
/// ```
/// use han_sim::time::SimDuration;
///
/// let d = SimDuration::from_mins(30);
/// assert_eq!(d.as_secs(), 1800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a count of microseconds since start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from milliseconds since start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from seconds since start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from minutes since start.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000_000)
    }

    /// Creates an instant from hours since start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000_000)
    }

    /// Returns the microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns whole seconds since simulation start.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns whole minutes since simulation start.
    pub const fn as_mins(self) -> u64 {
        self.0 / 60_000_000
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the time as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Returns the duration elapsed since `earlier`, or [`SimDuration::ZERO`]
    /// if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the instant `d` after `self`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked difference between two instants.
    ///
    /// Returns `None` if `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Rounds this instant *down* to a multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn floor_to(self, step: SimDuration) -> SimTime {
        assert!(step.0 > 0, "step must be non-zero");
        SimTime(self.0 - self.0 % step.0)
    }

    /// Rounds this instant *up* to a multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn ceil_to(self, step: SimDuration) -> SimTime {
        assert!(step.0 > 0, "step must be non-zero");
        let rem = self.0 % step.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 - rem + step.0)
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration from hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the number of microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns whole minutes.
    pub const fn as_mins(self) -> u64 {
        self.0 / 60_000_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e9
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked division of two durations, yielding the whole quotient.
    ///
    /// Returns `None` if `other` is zero.
    pub fn checked_div_duration(self, other: SimDuration) -> Option<u64> {
        self.0.checked_div(other.0)
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation time overflowed"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflowed"),
        )
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative duration between instants"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflowed"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflowed"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflowed"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_micros = self.0;
        let secs = total_micros / 1_000_000;
        let micros = total_micros % 1_000_000;
        let (h, m, s) = (secs / 3600, (secs / 60) % 60, secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}.{:06}", micros)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_mins(30).as_secs(), 1800);
        assert_eq!(SimTime::from_hours(1).as_mins(), 60);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_hours(2).as_mins(), 120);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_secs(), 13);
        assert_eq!((t - d).as_secs(), 7);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 4, SimDuration::from_secs(12));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn rounding() {
        let step = SimDuration::from_secs(2);
        assert_eq!(
            SimTime::from_millis(4500).floor_to(step),
            SimTime::from_secs(4)
        );
        assert_eq!(
            SimTime::from_millis(4500).ceil_to(step),
            SimTime::from_secs(6)
        );
        assert_eq!(SimTime::from_secs(4).ceil_to(step), SimTime::from_secs(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3661).to_string(), "01:01:01.000000");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_secs_f64(1.5).to_string(), "1.500s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_micros(), 0);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(
            SimTime::from_secs(5).checked_since(SimTime::from_secs(7)),
            None
        );
        assert_eq!(
            SimDuration::from_secs(10).checked_div_duration(SimDuration::from_secs(3)),
            Some(3)
        );
        assert_eq!(
            SimDuration::from_secs(10).checked_div_duration(SimDuration::ZERO),
            None
        );
    }
}
