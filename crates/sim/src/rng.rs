//! Deterministic random-number generation.
//!
//! Simulation results must be reproducible bit-for-bit from a single `u64`
//! seed, independent of the `rand` crate's internal algorithm choices. We
//! therefore implement **xoshiro256++** (public domain, Blackman & Vigna)
//! seeded through **SplitMix64** directly in this crate, and expose it as
//! [`DetRng`].
//!
//! Components of a simulation should each draw from their own *stream* via
//! [`DetRng::for_stream`], so that adding draws in one component never
//! perturbs another (the "RNG creep" problem in simulation studies).
//!
//! # Examples
//!
//! ```
//! use han_sim::rng::DetRng;
//!
//! let mut a = DetRng::for_stream(42, "arrivals");
//! let mut b = DetRng::for_stream(42, "arrivals");
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! let mut c = DetRng::for_stream(42, "channel");
//! // Different stream, (almost surely) different values.
//! let _ = c.next_u64();
//! ```

/// Derives a stable per-entity seed from a master seed and an entity id
/// via one SplitMix64 step.
///
/// This is the seed-derivation function multi-home layers use: positional
/// derivation (`seed + i`) makes home *i* of a seed-`s` run draw the exact
/// workload of home *i−1* of a seed-`s+1` run (adjacent master seeds
/// collide stream for stream), and inserting a home reshuffles every
/// downstream stream. Mixing the id through SplitMix64 decorrelates
/// adjacent master seeds and ties each entity's stream to its *identity*,
/// not its position in a list.
///
/// # Examples
///
/// ```
/// use han_sim::rng::mix_seed;
///
/// // Stable: the same (seed, id) always derives the same stream seed.
/// assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
/// // Decorrelated: adjacent master seeds do not slide into each other.
/// assert_ne!(mix_seed(10, 1), mix_seed(11, 0));
/// ```
pub fn mix_seed(seed: u64, id: u64) -> u64 {
    let mut s = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// SplitMix64 step; used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Implements enough of a uniform-random interface for all simulation needs
/// (integers, floats, ranges, Bernoulli, exponential and normal variates)
/// without depending on any external crate's reproducibility guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Creates a generator for a named sub-stream of `seed`.
    ///
    /// The stream name is hashed (FNV-1a) into the seed so that independent
    /// components of a simulation draw from independent sequences.
    pub fn for_stream(seed: u64, stream: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in stream.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        DetRng::new(seed ^ h)
    }

    /// Creates a generator for a numbered sub-stream (e.g. per node id).
    pub fn for_substream(seed: u64, stream: &str, index: u64) -> Self {
        let mut base = DetRng::for_stream(seed, stream);
        // Mix the index through the already-seeded state.
        let mut sm = base.next_u64() ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Returns the next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniform random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Debiased multiply-shift (Lemire 2019).
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range_u64(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an exponential variate with the given rate parameter λ.
    ///
    /// Used for Poisson-process inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn gen_exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        // Inverse CDF; 1 - U avoids ln(0).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Samples a standard normal variate (Box–Muller, polar form).
    pub fn gen_standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Samples a normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.gen_standard_normal()
    }

    /// The raw xoshiro256++ state, for checkpoint/restore of a running
    /// simulation. Together with [`DetRng::from_state`] this round-trips
    /// the generator exactly: the restored generator produces the same
    /// sequence the original would have continued with.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`DetRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        DetRng { s }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = DetRng::for_stream(7, "x");
        let mut b = DetRng::for_stream(7, "y");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_diverge() {
        let mut a = DetRng::for_substream(7, "node", 0);
        let mut b = DetRng::for_substream(7, "node", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u64_within_bound() {
        let mut rng = DetRng::new(2);
        for _ in 0..10_000 {
            assert!(rng.gen_range_u64(13) < 13);
        }
    }

    #[test]
    fn range_u64_covers_all_values() {
        let mut rng = DetRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range_u64(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = DetRng::new(4);
        let rate = 0.5;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn bool_probability() {
        let mut rng = DetRng::new(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice unchanged"
        );
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(1).gen_range_u64(0);
    }

    #[test]
    fn state_round_trip_continues_sequence() {
        let mut rng = DetRng::new(11);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut restored = DetRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn mix_seed_is_stable_and_decorrelated() {
        // Stability: pure function of (seed, id).
        assert_eq!(mix_seed(0, 0), mix_seed(0, 0));
        // Positional derivation's collision (seed+i): adjacent master
        // seeds must NOT slide into each other under mix_seed.
        for seed in 0..64u64 {
            for id in 0..8u64 {
                assert_ne!(
                    mix_seed(seed, id + 1),
                    mix_seed(seed + 1, id),
                    "seed {seed} id {id}: mixed derivation collided positionally"
                );
            }
        }
        // Locked vector so refactors cannot silently reseed every city.
        assert_eq!(mix_seed(0, 0), 16294208416658607535);
        assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
    }

    #[test]
    fn known_vector_stability() {
        // Locks the generator output so refactors cannot silently change
        // every experiment in the repository.
        let mut rng = DetRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }
}
