//! The discrete-event simulation engine.
//!
//! [`Engine`] owns a time-ordered queue of pending events; a [`World`]
//! implementation owns all mutable simulation state and handles each event as
//! it fires, scheduling follow-up events through the engine it is handed.
//! Splitting queue and state this way sidesteps the usual re-entrancy borrow
//! problem while keeping dispatch fully deterministic:
//!
//! * Events fire in strictly non-decreasing time order.
//! * Events scheduled for the same instant fire in the order they were
//!   scheduled (FIFO tie-breaking via a monotone sequence number).
//!
//! # Examples
//!
//! ```
//! use han_sim::engine::{Engine, World};
//! use han_sim::time::{SimDuration, SimTime};
//!
//! struct Counter(u32);
//! impl World for Counter {
//!     type Event = &'static str;
//!     fn handle(&mut self, engine: &mut Engine<&'static str>, _at: SimTime, ev: &'static str) {
//!         self.0 += 1;
//!         if ev == "tick" && self.0 < 3 {
//!             engine.schedule_in(SimDuration::from_secs(1), "tick");
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let mut world = Counter(0);
//! engine.schedule_at(SimTime::ZERO, "tick");
//! engine.run_until(&mut world, SimTime::from_secs(100));
//! assert_eq!(world.0, 3);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

/// Lifecycle of one scheduled event, tracked exactly (one byte per event
/// ever scheduled) so cancellation answers are never approximate: a
/// cancelled id can never fire, a fired id can never be "cancelled", and
/// [`Engine::pending`] is an O(1) counter instead of heap arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventState {
    /// Scheduled, not yet fired or cancelled.
    Pending,
    /// Cancelled before firing; its queue entry is skipped when drained.
    Cancelled,
    /// Dispatched to the world.
    Fired,
}

/// Simulation state that reacts to events.
///
/// The engine calls [`World::handle`] once per fired event; the handler may
/// schedule or cancel further events through the `engine` argument.
pub trait World {
    /// The event payload type dispatched by the engine.
    type Event;

    /// Handles one event firing at instant `at`.
    fn handle(&mut self, engine: &mut Engine<Self::Event>, at: SimTime, event: Self::Event);
}

struct Scheduled<E> {
    at: SimTime,
    /// Same-instant tie-break key. Normal scheduling draws monotone keys
    /// from the upper half of the key space (FIFO); front splicing
    /// ([`Engine::schedule_front`]) draws monotone keys from the lower
    /// half, so every spliced event sorts before every normally scheduled
    /// event at the same instant while splices keep FIFO among
    /// themselves.
    key: u64,
    /// Monotone schedule order; doubles as the event's [`EventId`] value.
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reversed so that the std max-heap pops the earliest (time, key) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// Keys at or above this mark belong to normal FIFO scheduling; keys
/// below it to front splicing. Both counters are bounded by the number of
/// events ever scheduled, so neither half can overflow into the other.
const NORMAL_KEY_BASE: u64 = 1 << 63;

/// A deterministic discrete-event engine over event payloads of type `E`.
///
/// See the [module documentation](self) for an end-to-end example.
pub struct Engine<E> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Next lower-half tie-break key handed to [`Engine::schedule_front`].
    next_front_key: u64,
    /// `states[seq]` is the exact lifecycle state of event `seq`. Grows by
    /// one byte per scheduled event — bounded by the run length, and the
    /// price of exact `cancel`/`pending` answers with plain array reads on
    /// the pop path (no hashing).
    states: Vec<EventState>,
    /// Events currently pending (scheduled, neither fired nor cancelled).
    live: usize,
    fired: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("fired", &self.fired)
            .finish()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            next_front_key: 0,
            states: Vec::new(),
            live: 0,
            fired: 0,
        }
    }

    /// Returns the current simulation instant.
    ///
    /// While a handler runs this is the firing time of the event being
    /// handled.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the total number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Returns the number of events still pending (scheduled and neither
    /// fired nor cancelled).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Schedules `event` to fire at absolute instant `at`.
    ///
    /// Returns a handle usable with [`Engine::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant; scheduling into
    /// the past would violate causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let id = EventId(self.next_seq);
        self.queue.push(Scheduled {
            at,
            key: NORMAL_KEY_BASE + self.next_seq,
            seq: self.next_seq,
            event,
        });
        self.states.push(EventState::Pending);
        self.live += 1;
        self.next_seq += 1;
        id
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Splices `event` in *front* of the same-instant queue: it fires at
    /// `at` before every event already scheduled (or later scheduled
    /// normally) for that instant. Front-spliced events keep FIFO order
    /// among themselves.
    ///
    /// This is the external-injection hook: a handler reacting to
    /// out-of-band input can insert a phase that, by the world's own
    /// ordering contract, belongs *before* work that is already queued —
    /// without cancelling and rebuilding the instant's chain. Everything
    /// stays deterministic: the spliced order is a pure function of the
    /// call sequence.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant.
    pub fn schedule_front(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let id = EventId(self.next_seq);
        self.queue.push(Scheduled {
            at,
            key: self.next_front_key,
            seq: self.next_seq,
            event,
        });
        self.next_front_key += 1;
        self.states.push(EventState::Pending);
        self.live += 1;
        self.next_seq += 1;
        id
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Only a still-pending id can move to Cancelled: an id that already
        // fired (or was never issued, or was already cancelled) reports
        // `false` exactly as documented. The stale queue entry is skipped
        // when it reaches the head.
        match self.states.get_mut(id.0 as usize) {
            Some(state @ EventState::Pending) => {
                *state = EventState::Cancelled;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Pops the next live event, advancing the clock to its firing time.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(sched) = self.queue.pop() {
            if self.states[sched.seq as usize] != EventState::Pending {
                continue;
            }
            self.states[sched.seq as usize] = EventState::Fired;
            self.live -= 1;
            debug_assert!(sched.at >= self.now, "event queue went back in time");
            self.now = sched.at;
            self.fired += 1;
            return Some((sched.at, sched.event));
        }
        None
    }

    /// Returns the firing time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(sched) = self.queue.peek() {
            if self.states[sched.seq as usize] != EventState::Pending {
                self.queue.pop();
                continue;
            }
            return Some(sched.at);
        }
        None
    }

    /// Runs `world` until the queue drains or the next event would fire
    /// *after* `deadline`.
    ///
    /// Events scheduled exactly at `deadline` still fire. On return, the
    /// clock rests at the last fired event (or `deadline` if that is later
    /// and the queue still holds future events).
    pub fn run_until<W>(&mut self, world: &mut W, deadline: SimTime)
    where
        W: World<Event = E> + ?Sized,
    {
        loop {
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    let (at, event) = self.pop().expect("peeked event vanished");
                    world.handle(self, at, event);
                }
                Some(_) => {
                    // Future work remains; park the clock at the deadline.
                    self.now = self.now.max(deadline);
                    return;
                }
                None => return,
            }
        }
    }

    /// Runs `world` until the event queue is completely drained.
    pub fn run_to_completion<W>(&mut self, world: &mut W)
    where
        W: World<Event = E> + ?Sized,
    {
        self.run_until(world, SimTime::MAX);
    }

    /// Runs at most `max_events` events, returning how many actually fired.
    ///
    /// Useful as a watchdog in tests against runaway event loops.
    pub fn run_events<W>(&mut self, world: &mut W, max_events: u64) -> u64
    where
        W: World<Event = E> + ?Sized,
    {
        let mut fired = 0;
        while fired < max_events {
            match self.pop() {
                Some((at, event)) => {
                    world.handle(self, at, event);
                    fired += 1;
                }
                None => break,
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Ev {
        A,
        B,
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, Ev)>,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, engine: &mut Engine<Ev>, at: SimTime, ev: Ev) {
            self.seen.push((at, ev));
            if let Ev::Chain(n) = ev {
                if n > 0 {
                    engine.schedule_in(SimDuration::from_secs(1), Ev::Chain(n - 1));
                }
            }
        }
    }

    #[test]
    fn fires_in_time_order() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        engine.schedule_at(SimTime::from_secs(5), Ev::B);
        engine.schedule_at(SimTime::from_secs(1), Ev::A);
        engine.run_to_completion(&mut world);
        assert_eq!(
            world.seen,
            vec![
                (SimTime::from_secs(1), Ev::A),
                (SimTime::from_secs(5), Ev::B)
            ]
        );
    }

    #[test]
    fn same_instant_fires_fifo() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        let t = SimTime::from_secs(3);
        engine.schedule_at(t, Ev::A);
        engine.schedule_at(t, Ev::B);
        engine.schedule_at(t, Ev::Chain(0));
        engine.run_to_completion(&mut world);
        assert_eq!(
            world.seen.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec![Ev::A, Ev::B, Ev::Chain(0)]
        );
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        engine.schedule_at(SimTime::ZERO, Ev::Chain(3));
        engine.run_to_completion(&mut world);
        assert_eq!(world.seen.len(), 4);
        assert_eq!(engine.now(), SimTime::from_secs(3));
        assert_eq!(engine.events_fired(), 4);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        let id = engine.schedule_at(SimTime::from_secs(1), Ev::A);
        engine.schedule_at(SimTime::from_secs(2), Ev::B);
        assert!(engine.cancel(id));
        assert!(!engine.cancel(id), "double cancel must be a no-op");
        engine.run_to_completion(&mut world);
        assert_eq!(world.seen, vec![(SimTime::from_secs(2), Ev::B)]);
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        engine.schedule_at(SimTime::from_secs(1), Ev::A);
        engine.schedule_at(SimTime::from_secs(2), Ev::B);
        engine.schedule_at(SimTime::from_secs(3), Ev::A);
        engine.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(world.seen.len(), 2);
        assert_eq!(engine.now(), SimTime::from_secs(2));
        assert_eq!(engine.pending(), 1);
        engine.run_to_completion(&mut world);
        assert_eq!(world.seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut engine: Engine<Ev> = Engine::new();
        let mut world = Recorder::default();
        engine.schedule_at(SimTime::from_secs(5), Ev::A);
        engine.run_to_completion(&mut world);
        engine.schedule_at(SimTime::from_secs(1), Ev::B);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut engine: Engine<Ev> = Engine::new();
        let a = engine.schedule_at(SimTime::from_secs(1), Ev::A);
        engine.schedule_at(SimTime::from_secs(2), Ev::B);
        engine.cancel(a);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn run_events_watchdog() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        engine.schedule_at(SimTime::ZERO, Ev::Chain(1000));
        let fired = engine.run_events(&mut world, 10);
        assert_eq!(fired, 10);
        assert_eq!(world.seen.len(), 10);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut engine: Engine<Ev> = Engine::new();
        assert!(!engine.cancel(EventId(99)));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        let id = engine.schedule_at(SimTime::from_secs(1), Ev::A);
        engine.run_to_completion(&mut world);
        assert!(
            !engine.cancel(id),
            "a fired event must not report as cancelled"
        );
        assert_eq!(engine.pending(), 0, "bookkeeping must stay exact");
        // And the refusal must not poison later events.
        engine.schedule_at(SimTime::from_secs(2), Ev::B);
        assert_eq!(engine.pending(), 1);
        engine.run_to_completion(&mut world);
        assert_eq!(world.seen.len(), 2);
    }

    #[test]
    fn cancelled_same_instant_event_skipped_in_fifo_order() {
        // Three events share one instant; cancelling the middle one must
        // leave the FIFO order of the survivors untouched.
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        let t = SimTime::from_secs(4);
        engine.schedule_at(t, Ev::A);
        let mid = engine.schedule_at(t, Ev::Chain(0));
        engine.schedule_at(t, Ev::B);
        assert!(engine.cancel(mid));
        engine.run_to_completion(&mut world);
        assert_eq!(
            world.seen,
            vec![(t, Ev::A), (t, Ev::B)],
            "cancellation must not disturb same-instant FIFO"
        );
    }

    #[test]
    fn cancel_all_pending_leaves_empty_engine() {
        let mut engine: Engine<Ev> = Engine::new();
        let ids: Vec<_> = (0..5)
            .map(|s| engine.schedule_at(SimTime::from_secs(s), Ev::A))
            .collect();
        for id in &ids {
            assert!(engine.cancel(*id));
        }
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.peek_time(), None, "peek must drain cancelled heads");
        let mut world = Recorder::default();
        engine.run_to_completion(&mut world);
        assert!(world.seen.is_empty());
        assert_eq!(engine.events_fired(), 0);
    }

    #[test]
    fn interleaved_schedule_at_and_in_keep_fifo_at_same_instant() {
        // schedule_in resolves against the clock at scheduling time; events
        // landing on the same instant through *different* scheduling calls
        // must still fire in the order they were scheduled.
        struct Mixer {
            seen: Vec<(SimTime, u32)>,
        }
        impl World for Mixer {
            type Event = u32;
            fn handle(&mut self, engine: &mut Engine<u32>, at: SimTime, ev: u32) {
                self.seen.push((at, ev));
                if ev == 0 {
                    // From t=1s, aim three different calls at t=3s,
                    // interleaved with an absolute one for t=3s.
                    engine.schedule_in(SimDuration::from_secs(2), 10);
                    engine.schedule_at(SimTime::from_secs(3), 11);
                    engine.schedule_in(SimDuration::from_secs(2), 12);
                }
            }
        }
        let mut engine = Engine::new();
        let mut world = Mixer { seen: Vec::new() };
        engine.schedule_at(SimTime::from_secs(1), 0);
        engine.schedule_at(SimTime::from_secs(3), 9); // scheduled first, fires first
        engine.run_to_completion(&mut world);
        let at_three: Vec<u32> = world
            .seen
            .iter()
            .filter(|(at, _)| *at == SimTime::from_secs(3))
            .map(|&(_, ev)| ev)
            .collect();
        assert_eq!(
            at_three,
            vec![9, 10, 11, 12],
            "schedule order, not call style, decides same-instant firing"
        );
    }

    #[test]
    fn schedule_front_preempts_same_instant_fifo() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        let t = SimTime::from_secs(3);
        engine.schedule_at(t, Ev::A);
        engine.schedule_at(t, Ev::B);
        // Spliced last, fires first; a second splice fires after the
        // first (FIFO among splices) but still before the normal queue.
        engine.schedule_front(t, Ev::Chain(0));
        engine.schedule_front(t, Ev::B);
        engine.run_to_completion(&mut world);
        assert_eq!(
            world.seen.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec![Ev::Chain(0), Ev::B, Ev::A, Ev::B],
        );
    }

    #[test]
    fn schedule_front_from_a_handler_preempts_the_instant_being_drained() {
        // A handler reacting to event 0 splices a new event into the
        // *current* instant: it must fire before the normally scheduled
        // events of that instant that have not yet fired.
        struct Splicer {
            seen: Vec<u32>,
        }
        impl World for Splicer {
            type Event = u32;
            fn handle(&mut self, engine: &mut Engine<u32>, at: SimTime, ev: u32) {
                self.seen.push(ev);
                if ev == 0 {
                    engine.schedule_front(at, 99);
                }
            }
        }
        let mut engine = Engine::new();
        let mut world = Splicer { seen: Vec::new() };
        let t = SimTime::from_secs(1);
        engine.schedule_at(t, 0);
        engine.schedule_at(t, 1);
        engine.schedule_at(t, 2);
        engine.run_to_completion(&mut world);
        assert_eq!(world.seen, vec![0, 99, 1, 2]);
    }

    #[test]
    fn schedule_front_is_cancellable_and_counted() {
        let mut engine: Engine<Ev> = Engine::new();
        let t = SimTime::from_secs(2);
        engine.schedule_at(t, Ev::A);
        let front = engine.schedule_front(t, Ev::B);
        assert_eq!(engine.pending(), 2);
        assert!(engine.cancel(front));
        assert_eq!(engine.pending(), 1);
        let mut world = Recorder::default();
        engine.run_to_completion(&mut world);
        assert_eq!(world.seen, vec![(t, Ev::A)]);
    }

    #[test]
    fn run_until_fires_exactly_at_deadline_and_parks_clock() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        engine.schedule_at(SimTime::from_secs(2), Ev::A);
        engine.schedule_at(SimTime::from_secs(5), Ev::B); // beyond deadline
        engine.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(
            world.seen,
            vec![(SimTime::from_secs(2), Ev::A)],
            "events exactly at the deadline are inclusive"
        );
        assert_eq!(
            engine.now(),
            SimTime::from_secs(2),
            "clock rests at the deadline while future work remains"
        );
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn run_until_with_drained_queue_keeps_last_fired_instant() {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        engine.schedule_at(SimTime::from_secs(1), Ev::A);
        engine.run_until(&mut world, SimTime::from_secs(10));
        assert_eq!(
            engine.now(),
            SimTime::from_secs(1),
            "an empty queue leaves the clock at the last fired event, \
             not the deadline"
        );
        // A deadline in the past of pending work fires nothing and leaves
        // the clock untouched.
        engine.schedule_at(SimTime::from_secs(8), Ev::B);
        engine.run_until(&mut world, SimTime::from_secs(5));
        assert_eq!(world.seen.len(), 1);
        assert_eq!(
            engine.now(),
            SimTime::from_secs(5),
            "the clock parks at the deadline when later work remains"
        );
    }
}
