//! Property-based tests of the discrete-event engine and RNG.

use han_sim::engine::{Engine, World};
use han_sim::rng::DetRng;
use han_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Default)]
struct Recorder {
    fired: Vec<(SimTime, u32)>,
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, _engine: &mut Engine<u32>, at: SimTime, ev: u32) {
        self.fired.push((at, ev));
    }
}

proptest! {
    #[test]
    fn events_fire_in_time_order_with_fifo_ties(
        times in prop::collection::vec(0u64..10_000, 1..200)
    ) {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        for (tag, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_micros(t), tag as u32);
        }
        engine.run_to_completion(&mut world);
        prop_assert_eq!(world.fired.len(), times.len());
        for w in world.fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100)
    ) {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        let mut expected = Vec::new();
        for (tag, &t) in times.iter().enumerate() {
            let id = engine.schedule_at(SimTime::from_micros(t), tag as u32);
            if *cancel_mask.get(tag).unwrap_or(&false) {
                prop_assert!(engine.cancel(id));
            } else {
                expected.push(tag as u32);
            }
        }
        engine.run_to_completion(&mut world);
        let mut fired: Vec<u32> = world.fired.iter().map(|&(_, e)| e).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn run_until_partitions_cleanly(
        times in prop::collection::vec(0u64..10_000, 1..100),
        split in 0u64..10_000
    ) {
        let mut engine = Engine::new();
        let mut world = Recorder::default();
        for (tag, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_micros(t), tag as u32);
        }
        engine.run_until(&mut world, SimTime::from_micros(split));
        let early = world.fired.len();
        for &(at, _) in &world.fired {
            prop_assert!(at <= SimTime::from_micros(split));
        }
        engine.run_to_completion(&mut world);
        prop_assert_eq!(world.fired.len(), times.len());
        for &(at, _) in &world.fired[early..] {
            prop_assert!(at > SimTime::from_micros(split));
        }
    }

    #[test]
    fn rng_streams_are_reproducible_and_bounded(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = DetRng::for_stream(seed, "prop");
        let mut b = DetRng::for_stream(seed, "prop");
        for _ in 0..50 {
            let x = a.gen_range_u64(bound);
            prop_assert_eq!(x, b.gen_range_u64(bound));
            prop_assert!(x < bound);
        }
    }

    #[test]
    fn exponential_samples_positive(seed in any::<u64>(), rate_milli in 1u64..100_000) {
        let mut rng = DetRng::new(seed);
        let rate = rate_milli as f64 / 1000.0;
        for _ in 0..100 {
            let x = rng.gen_exponential(rate);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn duration_arithmetic_round_trips(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = SimTime::from_micros(lo);
        let t_hi = SimTime::from_micros(hi);
        let d = t_hi - t_lo;
        prop_assert_eq!(t_lo + d, t_hi);
        prop_assert_eq!(d, SimDuration::from_micros(hi - lo));
        prop_assert_eq!(t_hi.saturating_since(t_lo), d);
        prop_assert_eq!(t_lo.saturating_since(t_hi), SimDuration::ZERO);
    }
}
