//! Fleet specifications: which devices a scenario simulates.
//!
//! The paper's evaluation runs 26 identical 1 kW devices, but the wire
//! format ([`StatusRecord::power_w`](han_device::status::StatusRecord) with
//! per-device minDCD/maxDCP) and the planner are heterogeneity-ready. This
//! module makes heterogeneity a first-class input: a [`DeviceClass`] names
//! one group of identical appliances (rated power, duty-cycle constraints,
//! count) and a [`FleetSpec`] is an ordered list of classes that expands
//! into per-device [`DeviceSpec`]s with contiguous device ids.
//!
//! Construction is validated: [`FleetSpec::new`] returns a typed
//! [`ScenarioError`] — never a `String`, never a panic — and the same error
//! type flows through the scenario builder and the simulation configuration
//! in `han-core`.

use han_device::appliance::{Appliance, ApplianceKind, DeviceId};
use han_device::duty_cycle::DutyCycleConstraints;
use han_device::power::Watts;
use han_sim::time::SimDuration;
use std::fmt;

/// Everything that can go wrong assembling a scenario or simulation
/// configuration.
///
/// One typed error covers the whole pipeline — fleet assembly
/// ([`FleetSpec::new`]), workload selection and scenario building in this
/// crate, plus configuration checks in `han-core` (round period, controller
/// range, request routing) — so callers propagate a single `Result` end to
/// end instead of matching on strings.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The fleet had no classes (or only empty ones).
    EmptyFleet,
    /// A device class had a count of zero.
    EmptyClass {
        /// Name of the offending class.
        class: String,
    },
    /// A device class had a negative or non-finite rated power.
    InvalidPower {
        /// Name of the offending class.
        class: String,
        /// The rejected power, kW.
        power_kw: f64,
    },
    /// A device class used a Type-1 (instant) appliance kind, which cannot
    /// be duty-cycle scheduled.
    NotSchedulable {
        /// Name of the offending class.
        class: String,
        /// The rejected kind.
        kind: ApplianceKind,
    },
    /// A workload arrival rate was negative or non-finite.
    InvalidRate {
        /// The rejected rate, requests per hour.
        rate_per_hour: f64,
    },
    /// A loss probability was outside `[0, 1]`.
    InvalidProbability {
        /// The rejected probability.
        probability: f64,
    },
    /// The scenario builder was finalized without a workload.
    MissingWorkload,
    /// The scenario or simulation duration was zero.
    ZeroDuration,
    /// The communication-plane round period was zero.
    ZeroRoundPeriod,
    /// The duration does not cover even one communication round.
    DurationTooShort {
        /// The configured duration.
        duration: SimDuration,
        /// The configured round period.
        round_period: SimDuration,
    },
    /// A centralized controller id was outside the fleet.
    ControllerOutOfRange {
        /// The configured controller.
        controller: DeviceId,
        /// Devices in the fleet.
        device_count: usize,
    },
    /// A request targeted a device outside the fleet.
    UnknownDevice {
        /// The request's target.
        device: DeviceId,
        /// Devices in the fleet.
        device_count: usize,
    },
    /// A packet-mode communication-plane topology has fewer nodes than the
    /// fleet has devices.
    TopologyTooSmall {
        /// Nodes in the topology.
        nodes: usize,
        /// Devices in the fleet.
        device_count: usize,
    },
    /// A neighborhood had no homes.
    EmptyNeighborhood,
    /// A city had no feeders or no homes per feeder.
    EmptyCity,
    /// A city was asked to partition its feeders across more shards than
    /// it has feeders (feeders are the unit of partitioning).
    TooManyShards {
        /// The requested shard count.
        shards: usize,
        /// Feeders available to partition.
        feeders: usize,
    },
    /// A power-cap profile was structurally invalid (empty, unsorted, not
    /// anchored at time zero, or containing a negative/NaN cap).
    InvalidCapProfile {
        /// What was wrong with the profile.
        reason: &'static str,
    },
    /// A feeder convergence criterion was invalid (zero iteration budget,
    /// or a negative/non-finite tolerance).
    InvalidConvergence {
        /// What was wrong with the criterion.
        reason: &'static str,
    },
    /// A fault plan was structurally invalid (unordered events, an empty
    /// outage window, a node id out of range, or an unparsable spec).
    InvalidFaultPlan {
        /// What was wrong with the plan.
        reason: String,
    },
    /// A replay trace was structurally invalid (a timestamp outside the
    /// simulated window; monotonicity is enforced by construction).
    InvalidTrace {
        /// What was wrong with the trace.
        reason: String,
    },
    /// A telemetry-event spec failed to parse or referenced an impossible
    /// instant/device (the online ingest grammar; see `telemetry`).
    InvalidTelemetry {
        /// What was wrong with the spec.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyFleet => write!(f, "fleet must contain at least one device"),
            ScenarioError::EmptyClass { class } => {
                write!(f, "device class '{class}' must have a count of at least 1")
            }
            ScenarioError::InvalidPower { class, power_kw } => {
                write!(
                    f,
                    "device class '{class}' has invalid rated power {power_kw} kW \
                     (must be finite and non-negative)"
                )
            }
            ScenarioError::NotSchedulable { class, kind } => {
                write!(
                    f,
                    "device class '{class}' uses Type-1 kind '{kind}', which cannot be \
                     duty-cycle scheduled"
                )
            }
            ScenarioError::InvalidRate { rate_per_hour } => {
                write!(
                    f,
                    "arrival rate {rate_per_hour}/h must be finite and non-negative"
                )
            }
            ScenarioError::InvalidProbability { probability } => {
                write!(f, "probability {probability} must be within [0, 1]")
            }
            ScenarioError::MissingWorkload => {
                write!(f, "scenario builder needs a workload (poisson/daily/trace)")
            }
            ScenarioError::ZeroDuration => write!(f, "duration must be positive"),
            ScenarioError::ZeroRoundPeriod => write!(f, "round period must be positive"),
            ScenarioError::DurationTooShort {
                duration,
                round_period,
            } => {
                write!(
                    f,
                    "duration {duration} must cover at least one round ({round_period})"
                )
            }
            ScenarioError::ControllerOutOfRange {
                controller,
                device_count,
            } => {
                write!(
                    f,
                    "controller {controller} out of range for a fleet of {device_count}"
                )
            }
            ScenarioError::UnknownDevice {
                device,
                device_count,
            } => {
                write!(
                    f,
                    "request targets unknown device {device} (fleet has {device_count})"
                )
            }
            ScenarioError::TopologyTooSmall {
                nodes,
                device_count,
            } => {
                write!(
                    f,
                    "packet topology has {nodes} nodes for {device_count} devices"
                )
            }
            ScenarioError::EmptyNeighborhood => {
                write!(f, "neighborhood must contain at least one home")
            }
            ScenarioError::EmptyCity => {
                write!(
                    f,
                    "city must contain at least one feeder with at least one home"
                )
            }
            ScenarioError::TooManyShards { shards, feeders } => {
                write!(
                    f,
                    "cannot partition {feeders} feeder(s) across {shards} shards \
                     (shards must not exceed feeders)"
                )
            }
            ScenarioError::InvalidCapProfile { reason } => {
                write!(f, "invalid power-cap profile: {reason}")
            }
            ScenarioError::InvalidConvergence { reason } => {
                write!(f, "invalid convergence criterion: {reason}")
            }
            ScenarioError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            ScenarioError::InvalidTrace { reason } => {
                write!(f, "invalid request trace: {reason}")
            }
            ScenarioError::InvalidTelemetry { reason } => {
                write!(f, "invalid telemetry event: {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One group of identical schedulable devices in a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceClass {
    name: String,
    kind: ApplianceKind,
    power_kw: f64,
    constraints: DutyCycleConstraints,
    count: usize,
}

impl DeviceClass {
    /// Describes `count` identical devices of the given kind, rated power
    /// and duty-cycle constraints.
    ///
    /// Construction is unchecked; validation happens when the class joins a
    /// [`FleetSpec`] (directly or through the scenario builder), which is
    /// where a typed [`ScenarioError`] can be reported with full context.
    pub fn new(
        name: impl Into<String>,
        kind: ApplianceKind,
        power_kw: f64,
        constraints: DutyCycleConstraints,
        count: usize,
    ) -> Self {
        DeviceClass {
            name: name.into(),
            kind,
            power_kw,
            constraints,
            count,
        }
    }

    /// `count` of the paper's generic devices: 1 kW Type-2 appliances with
    /// the paper's 15/30 min constraints.
    pub fn paper(count: usize) -> Self {
        DeviceClass::new(
            "paper 1kW",
            ApplianceKind::AirConditioner,
            1.0,
            DutyCycleConstraints::paper(),
            count,
        )
    }

    /// The class name used in reports and errors.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The appliance kind of every device in the class.
    pub fn kind(&self) -> ApplianceKind {
        self.kind
    }

    /// Rated power per device, kW.
    pub fn power_kw(&self) -> f64 {
        self.power_kw
    }

    /// Duty-cycle constraints of every device in the class.
    pub fn constraints(&self) -> DutyCycleConstraints {
        self.constraints
    }

    /// Number of devices in the class.
    pub fn count(&self) -> usize {
        self.count
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        if self.count == 0 {
            return Err(ScenarioError::EmptyClass {
                class: self.name.clone(),
            });
        }
        if !self.power_kw.is_finite() || self.power_kw < 0.0 {
            return Err(ScenarioError::InvalidPower {
                class: self.name.clone(),
                power_kw: self.power_kw,
            });
        }
        if self.kind.class() != han_device::appliance::DeviceClass::Schedulable {
            return Err(ScenarioError::NotSchedulable {
                class: self.name.clone(),
                kind: self.kind,
            });
        }
        Ok(())
    }
}

/// One device's fully resolved specification, expanded from a
/// [`DeviceClass`] with its fleet-wide contiguous id.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// The device's id (contiguous from 0 in class order).
    pub id: DeviceId,
    /// Appliance kind.
    pub kind: ApplianceKind,
    /// Rated power of the switched element.
    pub power: Watts,
    /// Duty-cycle constraints.
    pub constraints: DutyCycleConstraints,
}

impl DeviceSpec {
    /// Builds the concrete appliance this spec describes.
    pub fn appliance(&self) -> Appliance {
        Appliance::with_power(self.id, self.kind, self.power)
    }
}

/// A validated, ordered fleet of device classes.
///
/// Device ids are assigned contiguously from 0 in class order: a fleet of
/// `[A × 2, B × 3]` yields devices `d0, d1` of class A and `d2..d4` of
/// class B. The paper's homogeneous 26 × 1 kW fleet is
/// [`FleetSpec::paper`].
///
/// # Examples
///
/// ```
/// use han_workload::fleet::{DeviceClass, FleetSpec};
/// use han_device::duty_cycle::DutyCycleConstraints;
/// use han_device::ApplianceKind;
///
/// let fleet = FleetSpec::new(vec![
///     DeviceClass::new("ac", ApplianceKind::AirConditioner, 1.5,
///                      DutyCycleConstraints::paper(), 2),
///     DeviceClass::new("heater", ApplianceKind::WaterHeater, 2.0,
///                      DutyCycleConstraints::paper(), 1),
/// ])?;
/// assert_eq!(fleet.device_count(), 3);
/// assert_eq!(fleet.total_rated_kw(), 5.0);
/// # Ok::<(), han_workload::fleet::ScenarioError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    classes: Vec<DeviceClass>,
    device_count: usize,
}

impl FleetSpec {
    /// Creates a fleet from ordered device classes.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] if the fleet is empty, a class has zero devices,
    /// an invalid rated power, or a non-schedulable (Type-1) kind.
    pub fn new(classes: Vec<DeviceClass>) -> Result<Self, ScenarioError> {
        if classes.is_empty() {
            return Err(ScenarioError::EmptyFleet);
        }
        for class in &classes {
            class.validate()?;
        }
        let device_count = classes.iter().map(DeviceClass::count).sum();
        Ok(FleetSpec {
            classes,
            device_count,
        })
    }

    /// A homogeneous fleet: `count` identical devices.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] if `count` is zero or `power_kw` is invalid.
    pub fn uniform(
        count: usize,
        power_kw: f64,
        constraints: DutyCycleConstraints,
    ) -> Result<Self, ScenarioError> {
        FleetSpec::new(vec![DeviceClass::new(
            "uniform",
            ApplianceKind::AirConditioner,
            power_kw,
            constraints,
            count,
        )])
    }

    /// The paper's fleet: 26 × 1 kW, minDCD 15 min, maxDCP 30 min.
    pub fn paper() -> Self {
        FleetSpec::new(vec![DeviceClass::paper(26)]).expect("paper fleet is valid")
    }

    /// The ordered device classes.
    pub fn classes(&self) -> &[DeviceClass] {
        &self.classes
    }

    /// Total number of devices across all classes.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Sum of every device's rated power, kW.
    pub fn total_rated_kw(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.power_kw * c.count as f64)
            .sum()
    }

    /// Expands the classes into per-device specs with contiguous ids.
    pub fn specs(&self) -> impl Iterator<Item = DeviceSpec> + '_ {
        self.classes
            .iter()
            .flat_map(|c| std::iter::repeat_n(c, c.count))
            .enumerate()
            .map(|(i, c)| DeviceSpec {
                id: DeviceId(i as u32),
                kind: c.kind,
                power: Watts::from_kw(c.power_kw),
                constraints: c.constraints,
            })
    }

    /// Mean energy one request obliges, kWh: a request activates one
    /// uniformly random device for one minDCD instance of its class.
    pub fn mean_energy_per_request_kwh(&self) -> f64 {
        let total: f64 = self
            .classes
            .iter()
            .map(|c| c.count as f64 * c.power_kw * c.constraints.min_dcd().as_hours_f64())
            .sum();
        total / self.device_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fleet_shape() {
        let fleet = FleetSpec::paper();
        assert_eq!(fleet.device_count(), 26);
        assert_eq!(fleet.total_rated_kw(), 26.0);
        assert_eq!(fleet.classes().len(), 1);
        let specs: Vec<DeviceSpec> = fleet.specs().collect();
        assert_eq!(specs.len(), 26);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id, DeviceId(i as u32));
            assert_eq!(s.power, Watts::from_kw(1.0));
            assert_eq!(s.constraints, DutyCycleConstraints::paper());
        }
    }

    #[test]
    fn ids_are_contiguous_across_classes() {
        let fleet = FleetSpec::new(vec![
            DeviceClass::new(
                "a",
                ApplianceKind::AirConditioner,
                1.5,
                DutyCycleConstraints::paper(),
                2,
            ),
            DeviceClass::new(
                "b",
                ApplianceKind::Fridge,
                0.15,
                DutyCycleConstraints::paper(),
                3,
            ),
        ])
        .unwrap();
        let specs: Vec<DeviceSpec> = fleet.specs().collect();
        assert_eq!(specs.len(), 5);
        let ids: Vec<u32> = specs.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(specs[1].kind, ApplianceKind::AirConditioner);
        assert_eq!(specs[2].kind, ApplianceKind::Fridge);
        assert!((fleet.total_rated_kw() - 3.45).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_rejected() {
        assert_eq!(FleetSpec::new(vec![]), Err(ScenarioError::EmptyFleet));
    }

    #[test]
    fn empty_class_rejected() {
        let err = FleetSpec::new(vec![DeviceClass::new(
            "none",
            ApplianceKind::AirConditioner,
            1.0,
            DutyCycleConstraints::paper(),
            0,
        )])
        .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::EmptyClass {
                class: "none".into()
            }
        );
        assert!(err.to_string().contains("none"));
    }

    #[test]
    fn invalid_power_rejected() {
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let err = FleetSpec::new(vec![DeviceClass::new(
                "bad",
                ApplianceKind::AirConditioner,
                bad,
                DutyCycleConstraints::paper(),
                1,
            )])
            .unwrap_err();
            assert!(matches!(err, ScenarioError::InvalidPower { .. }), "{bad}");
        }
    }

    #[test]
    fn type1_kind_rejected() {
        let err = FleetSpec::new(vec![DeviceClass::new(
            "dryer",
            ApplianceKind::HairDryer,
            1.2,
            DutyCycleConstraints::paper(),
            1,
        )])
        .unwrap_err();
        assert!(matches!(err, ScenarioError::NotSchedulable { .. }));
        assert!(err.to_string().contains("Type-1"));
    }

    #[test]
    fn mean_energy_per_request() {
        // Paper: 1 kW × 0.25 h = 0.25 kWh whichever device is hit.
        assert!((FleetSpec::paper().mean_energy_per_request_kwh() - 0.25).abs() < 1e-12);
        // Mixed: (2 × 1.0 + 1 × 3.0) / 3 devices × 0.25 h.
        let fleet = FleetSpec::new(vec![
            DeviceClass::paper(2),
            DeviceClass::new(
                "heater",
                ApplianceKind::WaterHeater,
                3.0,
                DutyCycleConstraints::paper(),
                1,
            ),
        ])
        .unwrap();
        assert!((fleet.mean_energy_per_request_kwh() - 5.0 / 3.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn errors_display_and_source() {
        let err: Box<dyn std::error::Error> = Box::new(ScenarioError::EmptyFleet);
        assert!(err.to_string().contains("at least one device"));
    }
}
