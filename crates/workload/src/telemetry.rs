//! Telemetry events: the external-world stream an online driver ingests.
//!
//! A batch scenario fixes its whole workload up front; a *live* home does
//! not. A [`TelemetryEvent`] is one externally observed fact — a device
//! request arriving, an occupant releasing a device early, the feeder
//! changing its admission cap or tariff, a node crashing or rejoining, a
//! communication blackout — delivered to a running simulation instead of
//! baked into it. The online subsystem in `han-core` translates each event
//! into the same first-class engine event the batch path would have used,
//! which is what makes streamed and batch execution bit-identical.
//!
//! # Grammar
//!
//! Events parse from the same kind of compact spec as the CLI fault plan
//! (semicolon-separated entries, whole minutes by default), extended with
//! sub-minute suffixes because replaying a Poisson workload bit-identically
//! needs microsecond instants:
//!
//! ```text
//! arrive:DEV@T         request for device DEV at time T (one window)
//! arrive:DEV*W@T       ... obliging W duty-cycle windows
//! done:DEV@T           occupant releases DEV at T (early-off request;
//!                      minDCD still wins — see the online driver)
//! cap:KW@T             feeder admission cap becomes KW kilowatts at T
//! cap:none@T           feeder lifts the cap at T
//! tariff:RATE@T        flat tariff becomes RATE per kWh at T
//! down:N@T  up:N@T     node churn (same semantics as the fault plan)
//! outage:F-U           CP blackout over [F, U)
//! sigloss:F-U          feeder-signal dropout over [F, U)
//! ```
//!
//! Times are non-negative integers: plain (`10` = 10 minutes), seconds
//! (`30s`), or microseconds (`8123456us`). [`TelemetryEvent`]'s `Display`
//! prints the canonical spec back, so a telemetry log round-trips through
//! text — the online checkpoint format stores it exactly that way.
//!
//! ```
//! use han_workload::telemetry::TelemetryEvent;
//!
//! let events = TelemetryEvent::parse_script("arrive:3@10; cap:5.5@20; up:3@30").unwrap();
//! assert_eq!(events.len(), 3);
//! assert_eq!(events[0].to_string(), "arrive:3@10");
//! ```

use crate::fleet::ScenarioError;
use han_device::appliance::DeviceId;
use han_sim::time::SimTime;
use std::fmt;

/// One externally observed fact, timestamped in simulation time.
///
/// Node-churn and blackout variants mirror the fault plan's event shapes
/// (this crate sits *below* `han-core`, so it cannot name `FaultEvent`
/// directly); the online driver translates them one-to-one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// A request for `device` arrives at `at`, obliging `windows`
    /// duty-cycle windows.
    Arrival {
        /// The requested device.
        device: DeviceId,
        /// Arrival instant.
        at: SimTime,
        /// Duty-cycle windows obliged (≥ 1).
        windows: u32,
    },
    /// The occupant releases `device` at `at` — an early-off request. The
    /// minDCD interlock still applies: a release inside a minimum
    /// duty-cycle duration is refused (and counted), never violated.
    Completion {
        /// The released device.
        device: DeviceId,
        /// Release instant.
        at: SimTime,
    },
    /// The feeder's admission cap changes at `at`; `None` lifts it.
    CapChange {
        /// When the new cap takes effect.
        at: SimTime,
        /// The new cap in kW, or `None` for unconstrained.
        cap_kw: Option<f64>,
    },
    /// The flat tariff changes at `at`.
    Tariff {
        /// When the new rate takes effect.
        at: SimTime,
        /// The new rate, currency per kWh.
        rate_per_kwh: f64,
    },
    /// Node `node` crashes at `at` (mirrors the fault plan's `NodeDown`).
    NodeDown {
        /// When the node goes down.
        at: SimTime,
        /// The node (device interface) index.
        node: usize,
    },
    /// Node `node` rejoins at `at` (mirrors the fault plan's `NodeUp`).
    NodeUp {
        /// When the node comes back.
        at: SimTime,
        /// The node (device interface) index.
        node: usize,
    },
    /// A correlated CP blackout over `[from, until)`.
    CpOutage {
        /// Start of the blackout (inclusive).
        from: SimTime,
        /// End of the blackout (exclusive).
        until: SimTime,
    },
    /// The feeder's cap broadcast is lost over `[from, until)`.
    SignalLoss {
        /// Start of the dropout (inclusive).
        from: SimTime,
        /// End of the dropout (exclusive).
        until: SimTime,
    },
}

impl TelemetryEvent {
    /// The instant the event takes effect (window events: their start).
    pub fn effective_at(&self) -> SimTime {
        match *self {
            TelemetryEvent::Arrival { at, .. }
            | TelemetryEvent::Completion { at, .. }
            | TelemetryEvent::CapChange { at, .. }
            | TelemetryEvent::Tariff { at, .. }
            | TelemetryEvent::NodeDown { at, .. }
            | TelemetryEvent::NodeUp { at, .. } => at,
            TelemetryEvent::CpOutage { from, .. } | TelemetryEvent::SignalLoss { from, .. } => from,
        }
    }

    /// Parses one spec entry (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidTelemetry`] naming the entry and the reason.
    pub fn parse(entry: &str) -> Result<Self, ScenarioError> {
        let entry = entry.trim();
        let bad = |why: &str| ScenarioError::InvalidTelemetry {
            reason: format!("cannot parse '{entry}': {why}"),
        };
        let (kind, body) = entry
            .split_once(':')
            .ok_or_else(|| bad("expected 'kind:...'"))?;
        let event = match kind.trim() {
            "arrive" => {
                let (target, at) = body
                    .split_once('@')
                    .ok_or_else(|| bad("expected 'DEV[*W]@T'"))?;
                let (dev, windows) = match target.split_once('*') {
                    Some((dev, w)) => {
                        let windows: u32 = w
                            .trim()
                            .parse()
                            .map_err(|_| bad("window count must be a positive integer"))?;
                        (dev, windows)
                    }
                    None => (target, 1),
                };
                if windows == 0 {
                    return Err(bad("window count must be at least 1"));
                }
                let device: u32 = dev
                    .trim()
                    .parse()
                    .map_err(|_| bad("device must be a non-negative integer"))?;
                TelemetryEvent::Arrival {
                    device: DeviceId(device),
                    at: parse_instant(at).map_err(&bad)?,
                    windows,
                }
            }
            "done" => {
                let (dev, at) = body
                    .split_once('@')
                    .ok_or_else(|| bad("expected 'DEV@T'"))?;
                let device: u32 = dev
                    .trim()
                    .parse()
                    .map_err(|_| bad("device must be a non-negative integer"))?;
                TelemetryEvent::Completion {
                    device: DeviceId(device),
                    at: parse_instant(at).map_err(&bad)?,
                }
            }
            "cap" => {
                let (kw, at) = body.split_once('@').ok_or_else(|| bad("expected 'KW@T'"))?;
                let cap_kw = match kw.trim() {
                    "none" => None,
                    kw => {
                        let kw: f64 = kw
                            .parse()
                            .map_err(|_| bad("cap must be a number of kilowatts or 'none'"))?;
                        if !kw.is_finite() || kw < 0.0 {
                            return Err(bad("cap must be finite and non-negative"));
                        }
                        Some(kw)
                    }
                };
                TelemetryEvent::CapChange {
                    at: parse_instant(at).map_err(&bad)?,
                    cap_kw,
                }
            }
            "tariff" => {
                let (rate, at) = body
                    .split_once('@')
                    .ok_or_else(|| bad("expected 'RATE@T'"))?;
                let rate_per_kwh: f64 = rate
                    .trim()
                    .parse()
                    .map_err(|_| bad("rate must be a number per kWh"))?;
                if !rate_per_kwh.is_finite() || rate_per_kwh < 0.0 {
                    return Err(bad("rate must be finite and non-negative"));
                }
                TelemetryEvent::Tariff {
                    at: parse_instant(at).map_err(&bad)?,
                    rate_per_kwh,
                }
            }
            k @ ("down" | "up") => {
                let (node, at) = body
                    .split_once('@')
                    .ok_or_else(|| bad("expected 'NODE@T'"))?;
                let node: usize = node
                    .trim()
                    .parse()
                    .map_err(|_| bad("node must be a non-negative integer"))?;
                let at = parse_instant(at).map_err(&bad)?;
                if k == "down" {
                    TelemetryEvent::NodeDown { at, node }
                } else {
                    TelemetryEvent::NodeUp { at, node }
                }
            }
            k @ ("outage" | "sigloss") => {
                let (from, until) = body
                    .split_once('-')
                    .ok_or_else(|| bad("expected 'FROM-UNTIL'"))?;
                let from = parse_instant(from).map_err(&bad)?;
                let until = parse_instant(until).map_err(&bad)?;
                if from >= until {
                    return Err(bad("window is empty (from must precede until)"));
                }
                if k == "outage" {
                    TelemetryEvent::CpOutage { from, until }
                } else {
                    TelemetryEvent::SignalLoss { from, until }
                }
            }
            other => {
                return Err(bad(&format!(
                    "unknown event kind '{other}' \
                     (arrive/done/cap/tariff/down/up/outage/sigloss)"
                )))
            }
        };
        Ok(event)
    }

    /// Parses a whole telemetry script: entries separated by semicolons
    /// and/or newlines, blank entries skipped, `#` lines treated as
    /// comments. Events are returned **in script order** — a replay file is
    /// a log, and the online driver applies each event at its effective
    /// instant regardless of where it sits in the file.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidTelemetry`] for the first bad entry.
    pub fn parse_script(spec: &str) -> Result<Vec<Self>, ScenarioError> {
        let mut events = Vec::new();
        for line in spec.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            for entry in line.split(';') {
                if entry.trim().is_empty() {
                    continue;
                }
                events.push(TelemetryEvent::parse(entry)?);
            }
        }
        Ok(events)
    }
}

impl fmt::Display for TelemetryEvent {
    /// Prints the canonical spec entry; [`TelemetryEvent::parse`] of the
    /// output yields the event back (floats use Rust's shortest
    /// round-trip formatting).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TelemetryEvent::Arrival {
                device,
                at,
                windows: 1,
            } => write!(f, "arrive:{}@{}", device.0, Instant(at)),
            TelemetryEvent::Arrival {
                device,
                at,
                windows,
            } => write!(f, "arrive:{}*{windows}@{}", device.0, Instant(at)),
            TelemetryEvent::Completion { device, at } => {
                write!(f, "done:{}@{}", device.0, Instant(at))
            }
            TelemetryEvent::CapChange { at, cap_kw: None } => {
                write!(f, "cap:none@{}", Instant(at))
            }
            TelemetryEvent::CapChange {
                at,
                cap_kw: Some(kw),
            } => write!(f, "cap:{kw}@{}", Instant(at)),
            TelemetryEvent::Tariff { at, rate_per_kwh } => {
                write!(f, "tariff:{rate_per_kwh}@{}", Instant(at))
            }
            TelemetryEvent::NodeDown { at, node } => write!(f, "down:{node}@{}", Instant(at)),
            TelemetryEvent::NodeUp { at, node } => write!(f, "up:{node}@{}", Instant(at)),
            TelemetryEvent::CpOutage { from, until } => {
                write!(f, "outage:{}-{}", Instant(from), Instant(until))
            }
            TelemetryEvent::SignalLoss { from, until } => {
                write!(f, "sigloss:{}-{}", Instant(from), Instant(until))
            }
        }
    }
}

/// Range-checks every device / node index in a telemetry stream against
/// the fleet size — the online-ingest counterpart of the fault plan's
/// `validate_nodes`.
///
/// # Errors
///
/// [`ScenarioError::InvalidTelemetry`] naming the first out-of-range event.
pub fn validate_telemetry(
    events: &[TelemetryEvent],
    device_count: usize,
) -> Result<(), ScenarioError> {
    for ev in events {
        let index = match *ev {
            TelemetryEvent::Arrival { device, .. } | TelemetryEvent::Completion { device, .. } => {
                Some(device.0 as usize)
            }
            TelemetryEvent::NodeDown { node, .. } | TelemetryEvent::NodeUp { node, .. } => {
                Some(node)
            }
            _ => None,
        };
        if let Some(index) = index {
            if index >= device_count {
                return Err(ScenarioError::InvalidTelemetry {
                    reason: format!(
                        "'{ev}' targets node {index}, out of range for a fleet of \
                         {device_count} devices"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Parses one instant: a non-negative integer, plain (minutes), with an
/// `s` suffix (seconds) or a `us` suffix (microseconds).
fn parse_instant(s: &str) -> Result<SimTime, &'static str> {
    let s = s.trim();
    let (digits, unit): (&str, fn(u64) -> SimTime) = if let Some(d) = s.strip_suffix("us") {
        (d, SimTime::from_micros)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, SimTime::from_secs)
    } else {
        (s, SimTime::from_mins)
    };
    let value: u64 = digits
        .trim()
        .parse()
        .map_err(|_| "time must be a non-negative integer (minutes, or with an s/us suffix)")?;
    Ok(unit(value))
}

/// Canonical instant formatting: whole minutes plain, whole seconds with
/// `s`, anything finer in microseconds.
struct Instant(SimTime);

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0.as_micros();
        if us.is_multiple_of(60_000_000) {
            write!(f, "{}", us / 60_000_000)
        } else if us.is_multiple_of(1_000_000) {
            write!(f, "{}s", us / 1_000_000)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    #[test]
    fn parse_covers_every_kind() {
        let events = TelemetryEvent::parse_script(
            "arrive:3@10; arrive:4*2@11; done:3@25; cap:5.5@20; cap:none@30; \
             tariff:0.12@40; down:1@50; up:1@60; outage:70-75; sigloss:80-90",
        )
        .unwrap();
        assert_eq!(
            events,
            vec![
                TelemetryEvent::Arrival {
                    device: DeviceId(3),
                    at: t(10),
                    windows: 1
                },
                TelemetryEvent::Arrival {
                    device: DeviceId(4),
                    at: t(11),
                    windows: 2
                },
                TelemetryEvent::Completion {
                    device: DeviceId(3),
                    at: t(25)
                },
                TelemetryEvent::CapChange {
                    at: t(20),
                    cap_kw: Some(5.5)
                },
                TelemetryEvent::CapChange {
                    at: t(30),
                    cap_kw: None
                },
                TelemetryEvent::Tariff {
                    at: t(40),
                    rate_per_kwh: 0.12
                },
                TelemetryEvent::NodeDown { at: t(50), node: 1 },
                TelemetryEvent::NodeUp { at: t(60), node: 1 },
                TelemetryEvent::CpOutage {
                    from: t(70),
                    until: t(75)
                },
                TelemetryEvent::SignalLoss {
                    from: t(80),
                    until: t(90)
                },
            ]
        );
    }

    #[test]
    fn sub_minute_suffixes_reach_microsecond_resolution() {
        assert_eq!(
            TelemetryEvent::parse("arrive:0@90s")
                .unwrap()
                .effective_at(),
            SimTime::from_secs(90)
        );
        assert_eq!(
            TelemetryEvent::parse("arrive:0@8123456us")
                .unwrap()
                .effective_at(),
            SimTime::from_micros(8_123_456)
        );
    }

    #[test]
    fn display_round_trips_through_parse() {
        let script = "arrive:3*2@10; done:3@90s; cap:5.5@20; cap:none@8123456us; \
                      tariff:0.12@40; down:1@50; up:1@60; outage:70-75; sigloss:80-90";
        for ev in TelemetryEvent::parse_script(script).unwrap() {
            let reparsed = TelemetryEvent::parse(&ev.to_string()).unwrap();
            assert_eq!(reparsed, ev, "round-trip of '{ev}'");
        }
    }

    #[test]
    fn comments_and_newlines_are_script_structure() {
        let events = TelemetryEvent::parse_script(
            "# a replay log\narrive:0@1\n\n  # mid-file comment\ndown:0@2; up:0@3\n",
        )
        .unwrap();
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn malformed_entries_are_typed_errors() {
        for bad in [
            "explode:1@2",
            "arrive:1",
            "arrive:x@2",
            "arrive:1*0@2",
            "arrive:1@-5",
            "cap:fast@1",
            "cap:inf@1",
            "tariff:-1@1",
            "outage:9-9",
            "nonsense",
            "done:1@2h",
        ] {
            assert!(
                matches!(
                    TelemetryEvent::parse(bad),
                    Err(ScenarioError::InvalidTelemetry { .. })
                ),
                "entry '{bad}' must be rejected"
            );
        }
        assert!(TelemetryEvent::parse_script("").unwrap().is_empty());
    }

    #[test]
    fn device_and_node_ranges_are_checked() {
        let events = TelemetryEvent::parse_script("arrive:2@1; down:1@2; cap:3@4").unwrap();
        assert!(validate_telemetry(&events, 3).is_ok());
        let err = validate_telemetry(&events, 2).unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidTelemetry { .. }));
        assert!(err.to_string().contains("out of range"));
    }
}
