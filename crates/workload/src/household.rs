//! Time-varying household workloads.
//!
//! The paper's introduction motivates HANs with real household rhythms —
//! morning and evening demand peaks. This module generates requests from an
//! **inhomogeneous** Poisson process via thinning (Lewis & Shedler 1979),
//! with a configurable daily rate profile, for the richer example scenarios.

use han_device::appliance::DeviceId;
use han_device::request::Request;
use han_sim::rng::DetRng;
use han_sim::time::{SimDuration, SimTime};

/// A 24-hour arrival-rate profile, requests per hour per hour-of-day.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyProfile {
    hourly_rate: [f64; 24],
}

impl DailyProfile {
    /// Creates a profile from 24 hourly rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or non-finite.
    pub fn new(hourly_rate: [f64; 24]) -> Self {
        assert!(
            hourly_rate.iter().all(|r| r.is_finite() && *r >= 0.0),
            "hourly rates must be finite and non-negative"
        );
        DailyProfile { hourly_rate }
    }

    /// A typical working household: quiet nights, a morning spike
    /// (06–09), midday base and a strong evening peak (18–22).
    pub fn typical_household() -> Self {
        let mut r = [2.0f64; 24];
        for rate in &mut r[0..5] {
            *rate = 0.5;
        }
        for rate in &mut r[6..9] {
            *rate = 12.0;
        }
        for rate in &mut r[12..14] {
            *rate = 6.0;
        }
        for rate in &mut r[18..22] {
            *rate = 20.0;
        }
        DailyProfile::new(r)
    }

    /// The rate at a given simulation instant (wraps daily).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let hour = (t.as_secs() / 3600) % 24;
        self.hourly_rate[hour as usize]
    }

    /// The maximum rate across the day (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        self.hourly_rate.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// The mean daily rate.
    pub fn mean_rate(&self) -> f64 {
        self.hourly_rate.iter().sum::<f64>() / 24.0
    }

    /// The mean rate over `[0, duration)` (wrapping daily) — the honest
    /// expectation for experiments shorter than a full day, where the
    /// whole-day mean can be off by the peak-to-trough ratio.
    pub fn mean_rate_over(&self, duration: SimDuration) -> f64 {
        let hours = duration.as_hours_f64();
        if hours == 0.0 {
            return 0.0;
        }
        let full = hours.floor() as u64;
        let mut rate_hours: f64 = (0..full).map(|h| self.hourly_rate[(h % 24) as usize]).sum();
        rate_hours += (hours - full as f64) * self.hourly_rate[(full % 24) as usize];
        rate_hours / hours
    }
}

/// Generates requests over `duration` following `profile`, spread uniformly
/// over `device_count` devices. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `device_count` is zero.
pub fn generate_household(
    profile: &DailyProfile,
    device_count: usize,
    duration: SimDuration,
    seed: u64,
) -> Vec<Request> {
    assert!(device_count > 0, "need at least one device");
    let mut rng = DetRng::for_stream(seed, "household-arrivals");
    let mut out = Vec::new();
    let envelope = profile.peak_rate();
    if envelope == 0.0 {
        return out;
    }
    let env_per_sec = envelope / 3600.0;
    let horizon = duration.as_secs_f64();
    let mut t = 0.0f64;
    loop {
        // Candidate from the homogeneous envelope process...
        t += rng.gen_exponential(env_per_sec);
        if t >= horizon {
            break;
        }
        let at = SimTime::from_micros((t * 1e6).round() as u64);
        // ...thinned by the instantaneous rate ratio.
        if rng.gen_bool(profile.rate_at(at) / envelope) {
            let device = DeviceId(rng.gen_index(device_count) as u32);
            out.push(Request::new(device, at));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_lookup_wraps() {
        let p = DailyProfile::typical_household();
        assert_eq!(p.rate_at(SimTime::from_hours(19)), 20.0);
        assert_eq!(p.rate_at(SimTime::from_hours(19 + 24)), 20.0);
        assert_eq!(p.rate_at(SimTime::from_hours(2)), 0.5);
        assert_eq!(p.peak_rate(), 20.0);
    }

    #[test]
    fn evening_busier_than_night() {
        let p = DailyProfile::typical_household();
        let reqs = generate_household(&p, 26, SimDuration::from_hours(24 * 20), 3);
        let mut evening = 0usize;
        let mut night = 0usize;
        for r in &reqs {
            match (r.arrival.as_secs() / 3600) % 24 {
                18..=21 => evening += 1,
                0..=4 => night += 1,
                _ => {}
            }
        }
        assert!(evening > night * 10, "evening {evening} vs night {night}");
    }

    #[test]
    fn empirical_mean_rate_matches() {
        let p = DailyProfile::typical_household();
        let days = 40.0;
        let reqs = generate_household(&p, 26, SimDuration::from_hours(24 * 40), 9);
        let per_day = reqs.len() as f64 / days;
        let expected = p.mean_rate() * 24.0;
        assert!(
            (per_day - expected).abs() < expected * 0.1,
            "per_day={per_day} expected={expected}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let p = DailyProfile::typical_household();
        let a = generate_household(&p, 5, SimDuration::from_hours(48), 1);
        let b = generate_household(&p, 5, SimDuration::from_hours(48), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_rate_over_window() {
        let p = DailyProfile::typical_household();
        // First six hours: five at 0.5/h (night) plus one at 2.0/h.
        assert!((p.mean_rate_over(SimDuration::from_hours(6)) - 0.75).abs() < 1e-12);
        // A full day matches the whole-day mean; so does any multiple.
        assert!((p.mean_rate_over(SimDuration::from_hours(24)) - p.mean_rate()).abs() < 1e-12);
        assert!((p.mean_rate_over(SimDuration::from_hours(48)) - p.mean_rate()).abs() < 1e-12);
        // Fractional hours weight the partial slot: 4.5 h of night.
        assert!((p.mean_rate_over(SimDuration::from_mins(270)) - 0.5).abs() < 1e-12);
        assert_eq!(p.mean_rate_over(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn zero_profile_generates_nothing() {
        let p = DailyProfile::new([0.0; 24]);
        assert!(generate_household(&p, 5, SimDuration::from_hours(48), 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let mut r = [1.0; 24];
        r[3] = -1.0;
        DailyProfile::new(r);
    }
}
