//! Grid-facing power signals a home plans against.
//!
//! The paper coordinates loads *within* one HAN. A layer above it — a
//! feeder coordinator, a utility price broadcast, a grid operator — speaks
//! to a home in one currency: **how much power the home's scheduler may
//! admit at a given time**. [`PowerCapProfile`] is that currency: a
//! validated, piecewise-constant cap (kW over simulation time) that the
//! coordinated planner consults each round. The cap shapes *admission
//! only* — a device endangered by the cap is still forced ON by the
//! planner's laxity guard, so duty-cycle obligations survive any signal,
//! however aggressive.
//!
//! Profiles are deliberately dumb data: `han-core`'s feeder subsystem
//! derives them from richer signals (capacity caps, time-of-use tariffs,
//! congestion feedback) and hands them to each home via
//! [`Scenario::power_cap`](crate::scenario::Scenario).

use crate::fleet::ScenarioError;
use han_sim::time::{SimDuration, SimTime};

/// A piecewise-constant admission cap, in kilowatts over simulation time.
///
/// The profile is a step function: `steps[k] = (t_k, cap_k)` means the cap
/// `cap_k` holds on `[t_k, t_{k+1})`. The first step is pinned at
/// [`SimTime::ZERO`], so the cap is defined at every instant. Caps may be
/// [`f64::INFINITY`] — [`PowerCapProfile::unlimited`] is the identity
/// signal under which a planner behaves exactly as if no profile were set.
///
/// # Examples
///
/// ```
/// use han_sim::time::SimTime;
/// use han_workload::signal::PowerCapProfile;
///
/// let cap = PowerCapProfile::from_steps(vec![
///     (SimTime::ZERO, 6.0),
///     (SimTime::from_hours(17), 3.0), // evening curtailment
///     (SimTime::from_hours(21), 6.0),
/// ])?;
/// assert_eq!(cap.cap_at(SimTime::from_hours(18)), 3.0);
/// assert_eq!(cap.next_change_after(SimTime::from_hours(18)),
///            Some(SimTime::from_hours(21)));
/// # Ok::<(), han_workload::fleet::ScenarioError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCapProfile {
    /// `(instant, cap_kw)` breakpoints, strictly increasing in time,
    /// starting at `SimTime::ZERO`.
    steps: Vec<(SimTime, f64)>,
}

impl PowerCapProfile {
    /// The identity signal: an infinite cap at all times. A planner given
    /// this profile behaves bit-identically to one given no profile.
    pub fn unlimited() -> Self {
        PowerCapProfile {
            steps: vec![(SimTime::ZERO, f64::INFINITY)],
        }
    }

    /// A constant cap.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidCapProfile`] if `cap_kw` is negative or NaN.
    pub fn constant(cap_kw: f64) -> Result<Self, ScenarioError> {
        PowerCapProfile::from_steps(vec![(SimTime::ZERO, cap_kw)])
    }

    /// A profile from explicit `(instant, cap_kw)` steps; each cap holds
    /// until the next step.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidCapProfile`] if `steps` is empty, does not
    /// start at [`SimTime::ZERO`], is not strictly increasing in time, or
    /// contains a negative or NaN cap (`+inf` is allowed: "no limit").
    pub fn from_steps(steps: Vec<(SimTime, f64)>) -> Result<Self, ScenarioError> {
        if steps.is_empty() {
            return Err(ScenarioError::InvalidCapProfile {
                reason: "profile must contain at least one step",
            });
        }
        if steps[0].0 != SimTime::ZERO {
            return Err(ScenarioError::InvalidCapProfile {
                reason: "profile must start at time zero",
            });
        }
        for pair in steps.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(ScenarioError::InvalidCapProfile {
                    reason: "steps must be strictly increasing in time",
                });
            }
        }
        if steps.iter().any(|&(_, kw)| kw.is_nan() || kw < 0.0) {
            return Err(ScenarioError::InvalidCapProfile {
                reason: "caps must be non-negative (infinity allowed)",
            });
        }
        Ok(PowerCapProfile { steps })
    }

    /// A profile from fixed-interval samples starting at time zero:
    /// `samples[k]` holds on `[k·interval, (k+1)·interval)`, and the last
    /// sample holds forever. Consecutive equal samples are merged, so a
    /// flat tail costs one step.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidCapProfile`] if `interval` is zero, the
    /// samples are empty, or any sample is negative or NaN.
    pub fn from_samples(interval: SimDuration, samples: &[f64]) -> Result<Self, ScenarioError> {
        if interval.is_zero() {
            return Err(ScenarioError::InvalidCapProfile {
                reason: "sample interval must be positive",
            });
        }
        let mut steps: Vec<(SimTime, f64)> = Vec::new();
        for (k, &kw) in samples.iter().enumerate() {
            if steps.last().is_none_or(|&(_, prev)| prev != kw) {
                steps.push((SimTime::ZERO + interval * k as u64, kw));
            }
        }
        PowerCapProfile::from_steps(steps)
    }

    /// The cap in force at instant `t`, in kW.
    pub fn cap_at(&self, t: SimTime) -> f64 {
        match self.steps.binary_search_by(|(at, _)| at.cmp(&t)) {
            Ok(i) => self.steps[i].1,
            // `steps[0].0 == ZERO`, so `Err(0)` is unreachable for any `t`.
            Err(i) => self.steps[i.saturating_sub(1)].1,
        }
    }

    /// The first instant strictly after `t` at which the cap changes, or
    /// `None` if the cap is constant from `t` on. This bounds how long a
    /// plan computed at `t` may be reused unchanged.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        let idx = match self.steps.binary_search_by(|(at, _)| at.cmp(&t)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        self.steps.get(idx).map(|&(at, _)| at)
    }

    /// Whether the profile never constrains anything (infinite everywhere).
    pub fn is_unlimited(&self) -> bool {
        self.steps.iter().all(|&(_, kw)| kw == f64::INFINITY)
    }

    /// The lowest cap anywhere in the profile, in kW.
    pub fn min_cap_kw(&self) -> f64 {
        self.steps
            .iter()
            .map(|&(_, kw)| kw)
            .fold(f64::INFINITY, f64::min)
    }

    /// The raw `(instant, cap_kw)` steps.
    pub fn steps(&self) -> &[(SimTime, f64)] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    #[test]
    fn constant_profile_queries() {
        let p = PowerCapProfile::constant(4.5).unwrap();
        assert_eq!(p.cap_at(SimTime::ZERO), 4.5);
        assert_eq!(p.cap_at(t(1000)), 4.5);
        assert_eq!(p.next_change_after(SimTime::ZERO), None);
        assert_eq!(p.min_cap_kw(), 4.5);
        assert!(!p.is_unlimited());
    }

    #[test]
    fn unlimited_is_identity() {
        let p = PowerCapProfile::unlimited();
        assert!(p.is_unlimited());
        assert_eq!(p.cap_at(t(42)), f64::INFINITY);
        assert_eq!(p.next_change_after(t(42)), None);
    }

    #[test]
    fn step_lookup_and_boundaries() {
        let p = PowerCapProfile::from_steps(vec![(SimTime::ZERO, 6.0), (t(30), 2.0), (t(60), 6.0)])
            .unwrap();
        assert_eq!(p.cap_at(t(29)), 6.0);
        assert_eq!(p.cap_at(t(30)), 2.0, "steps are left-closed");
        assert_eq!(p.cap_at(t(59)), 2.0);
        assert_eq!(p.cap_at(t(61)), 6.0);
        assert_eq!(p.next_change_after(SimTime::ZERO), Some(t(30)));
        assert_eq!(p.next_change_after(t(30)), Some(t(60)), "strictly after");
        assert_eq!(p.next_change_after(t(60)), None);
        assert_eq!(p.min_cap_kw(), 2.0);
    }

    #[test]
    fn from_samples_merges_runs() {
        let p = PowerCapProfile::from_samples(
            SimDuration::from_mins(1),
            &[5.0, 5.0, 3.0, 3.0, 3.0, 5.0],
        )
        .unwrap();
        assert_eq!(p.steps().len(), 3);
        assert_eq!(p.cap_at(t(1)), 5.0);
        assert_eq!(p.cap_at(t(4)), 3.0);
        assert_eq!(p.cap_at(t(100)), 5.0, "last sample holds forever");
        assert_eq!(p.next_change_after(t(1)), Some(t(2)));
    }

    #[test]
    fn invalid_profiles_rejected() {
        for bad in [
            PowerCapProfile::from_steps(vec![]),
            PowerCapProfile::from_steps(vec![(t(5), 1.0)]),
            PowerCapProfile::from_steps(vec![(SimTime::ZERO, 1.0), (SimTime::ZERO, 2.0)]),
            PowerCapProfile::from_steps(vec![(SimTime::ZERO, -1.0)]),
            PowerCapProfile::from_steps(vec![(SimTime::ZERO, f64::NAN)]),
            PowerCapProfile::constant(-0.5),
            PowerCapProfile::from_samples(SimDuration::ZERO, &[1.0]),
            PowerCapProfile::from_samples(SimDuration::from_mins(1), &[]),
        ] {
            assert!(matches!(bad, Err(ScenarioError::InvalidCapProfile { .. })));
        }
        // Infinity is a legal cap ("no limit here").
        assert!(PowerCapProfile::constant(f64::INFINITY).is_ok());
    }
}
