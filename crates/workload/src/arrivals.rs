//! Request arrival processes.
//!
//! The paper evaluates with user requests "randomly arriving" at an
//! aggregate rate of 4, 18 or 30 requests per hour across the 26 devices.
//! [`PoissonArrivals`] is the standard model for that: exponential
//! inter-arrival times for the aggregate process, with each request
//! assigned to a uniformly random device. Deterministic in the seed.

use han_device::appliance::DeviceId;
use han_device::request::Request;
use han_sim::rng::DetRng;
use han_sim::time::{SimDuration, SimTime};

/// A homogeneous Poisson request generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonArrivals {
    /// Aggregate arrival rate, requests per hour.
    pub rate_per_hour: f64,
    /// Number of devices requests are spread over.
    pub device_count: usize,
    /// Windows requested per arrival (the paper: 1).
    pub windows_per_request: u32,
}

impl PoissonArrivals {
    /// Creates a generator with one window per request.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative/non-finite or `device_count` is zero.
    pub fn new(rate_per_hour: f64, device_count: usize) -> Self {
        assert!(
            rate_per_hour.is_finite() && rate_per_hour >= 0.0,
            "rate must be finite and non-negative"
        );
        assert!(device_count > 0, "need at least one device");
        PoissonArrivals {
            rate_per_hour,
            device_count,
            windows_per_request: 1,
        }
    }

    /// Generates all requests in `[0, duration)`, sorted by arrival time.
    pub fn generate(&self, duration: SimDuration, seed: u64) -> Vec<Request> {
        let mut rng = DetRng::for_stream(seed, "arrivals");
        let mut out = Vec::new();
        if self.rate_per_hour == 0.0 {
            return out;
        }
        let rate_per_sec = self.rate_per_hour / 3600.0;
        let mut t = 0.0f64;
        let horizon = duration.as_secs_f64();
        loop {
            t += rng.gen_exponential(rate_per_sec);
            if t >= horizon {
                break;
            }
            let device = DeviceId(rng.gen_index(self.device_count) as u32);
            let arrival = SimTime::from_micros((t * 1e6).round() as u64);
            out.push(Request::with_windows(
                device,
                arrival,
                self.windows_per_request,
            ));
        }
        out
    }
}

/// A fixed trace of requests (replay of a recorded or hand-built workload).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceArrivals {
    requests: Vec<Request>,
}

impl TraceArrivals {
    /// Creates a trace, sorting by arrival time (stable for equal times).
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| (r.arrival, r.device));
        TraceArrivals { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Consumes the trace, yielding the sorted requests.
    pub fn into_requests(self) -> Vec<Request> {
        self.requests
    }
}

/// A synchronized burst: `count` devices all requested at the same instant —
/// the worst case for load stacking that coordination must absorb.
///
/// Devices `0..count` are used in order.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn burst(at: SimTime, count: usize) -> Vec<Request> {
    assert!(count > 0, "burst must contain at least one request");
    (0..count)
        .map(|i| Request::new(DeviceId(i as u32), at))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_rate_close_to_nominal() {
        let gen = PoissonArrivals::new(30.0, 26);
        let reqs = gen.generate(SimDuration::from_hours(200), 1);
        let rate = reqs.len() as f64 / 200.0;
        assert!((rate - 30.0).abs() < 1.0, "empirical rate {rate}");
    }

    #[test]
    fn deterministic_in_seed() {
        let gen = PoissonArrivals::new(18.0, 26);
        let a = gen.generate(SimDuration::from_hours(5), 7);
        let b = gen.generate(SimDuration::from_hours(5), 7);
        assert_eq!(a, b);
        let c = gen.generate(SimDuration::from_hours(5), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_and_within_horizon() {
        let gen = PoissonArrivals::new(30.0, 26);
        let reqs = gen.generate(SimDuration::from_mins(350), 3);
        let horizon = SimTime::from_mins(350);
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(reqs.iter().all(|r| r.arrival < horizon));
        assert!(reqs.iter().all(|r| r.device.index() < 26));
    }

    #[test]
    fn devices_roughly_uniform() {
        let gen = PoissonArrivals::new(60.0, 4);
        let reqs = gen.generate(SimDuration::from_hours(100), 5);
        let mut counts = [0usize; 4];
        for r in &reqs {
            counts[r.device.index()] += 1;
        }
        let total: usize = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.03, "device {i} share {share}");
        }
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let gen = PoissonArrivals::new(0.0, 26);
        assert!(gen.generate(SimDuration::from_hours(10), 1).is_empty());
    }

    #[test]
    fn trace_sorts_input() {
        let trace = TraceArrivals::new(vec![
            Request::new(DeviceId(1), SimTime::from_mins(10)),
            Request::new(DeviceId(0), SimTime::from_mins(5)),
        ]);
        assert_eq!(trace.requests()[0].device, DeviceId(0));
        assert_eq!(trace.into_requests().len(), 2);
    }

    #[test]
    fn burst_is_simultaneous() {
        let reqs = burst(SimTime::from_mins(1), 5);
        assert_eq!(reqs.len(), 5);
        assert!(reqs.iter().all(|r| r.arrival == SimTime::from_mins(1)));
        let devices: Vec<u32> = reqs.iter().map(|r| r.device.0).collect();
        assert_eq!(devices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        PoissonArrivals::new(1.0, 0);
    }
}
