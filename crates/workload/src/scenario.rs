//! The paper's evaluation scenarios.
//!
//! Section III fixes: 26 devices of 1 kW each, minDCD = 15 min,
//! maxDCP = 30 min, experiments of 350 minutes, and three aggregate request
//! rates — high (30/h), moderate (18/h) and low (4/h).

use crate::arrivals::PoissonArrivals;
use han_device::duty_cycle::DutyCycleConstraints;
use han_device::request::Request;
use han_sim::time::SimDuration;
use std::fmt;

/// The paper's three arrival-rate regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalRate {
    /// 4 requests per hour.
    Low,
    /// 18 requests per hour.
    Moderate,
    /// 30 requests per hour.
    High,
}

impl ArrivalRate {
    /// Requests per hour for this regime.
    pub fn per_hour(self) -> f64 {
        match self {
            ArrivalRate::Low => 4.0,
            ArrivalRate::Moderate => 18.0,
            ArrivalRate::High => 30.0,
        }
    }

    /// All regimes in the order of the paper's x-axes.
    pub fn all() -> [ArrivalRate; 3] {
        [ArrivalRate::Low, ArrivalRate::Moderate, ArrivalRate::High]
    }
}

impl fmt::Display for ArrivalRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalRate::Low => write!(f, "low (4/h)"),
            ArrivalRate::Moderate => write!(f, "moderate (18/h)"),
            ArrivalRate::High => write!(f, "high (30/h)"),
        }
    }
}

/// A complete experiment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Descriptive name used in reports.
    pub name: String,
    /// Number of Type-2 devices (paper: 26).
    pub device_count: usize,
    /// Rated power per device, kW (paper: 1.0).
    pub device_power_kw: f64,
    /// Duty-cycle constraints (paper: 15/30 min).
    pub constraints: DutyCycleConstraints,
    /// Aggregate request rate, per hour.
    pub rate_per_hour: f64,
    /// Experiment duration (paper: 350 min).
    pub duration: SimDuration,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Scenario {
    /// The paper's scenario at a given arrival-rate regime.
    pub fn paper(rate: ArrivalRate, seed: u64) -> Self {
        Scenario {
            name: format!("paper {rate}"),
            device_count: 26,
            device_power_kw: 1.0,
            constraints: DutyCycleConstraints::paper(),
            rate_per_hour: rate.per_hour(),
            duration: SimDuration::from_mins(350),
            seed,
        }
    }

    /// Generates this scenario's request trace.
    pub fn requests(&self) -> Vec<Request> {
        PoissonArrivals::new(self.rate_per_hour, self.device_count)
            .generate(self.duration, self.seed)
    }

    /// Expected average load implied by the workload, in kW: every request
    /// obliges one minDCD instance of one device.
    pub fn expected_average_load_kw(&self) -> f64 {
        let energy_per_request_kwh =
            self.device_power_kw * self.constraints.min_dcd().as_hours_f64();
        self.rate_per_hour * energy_per_request_kwh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_paper() {
        assert_eq!(ArrivalRate::Low.per_hour(), 4.0);
        assert_eq!(ArrivalRate::Moderate.per_hour(), 18.0);
        assert_eq!(ArrivalRate::High.per_hour(), 30.0);
        assert_eq!(ArrivalRate::all().len(), 3);
    }

    #[test]
    fn paper_scenario_parameters() {
        let s = Scenario::paper(ArrivalRate::High, 1);
        assert_eq!(s.device_count, 26);
        assert_eq!(s.device_power_kw, 1.0);
        assert_eq!(s.duration, SimDuration::from_mins(350));
        assert_eq!(s.constraints.min_dcd(), SimDuration::from_mins(15));
        assert_eq!(s.constraints.max_dcp(), SimDuration::from_mins(30));
    }

    #[test]
    fn expected_average_loads() {
        // 30/h × 1 kW × 0.25 h = 7.5 kW; 18/h → 4.5 kW; 4/h → 1 kW.
        let high = Scenario::paper(ArrivalRate::High, 1).expected_average_load_kw();
        let mod_ = Scenario::paper(ArrivalRate::Moderate, 1).expected_average_load_kw();
        let low = Scenario::paper(ArrivalRate::Low, 1).expected_average_load_kw();
        assert!((high - 7.5).abs() < 1e-12);
        assert!((mod_ - 4.5).abs() < 1e-12);
        assert!((low - 1.0).abs() < 1e-12);
    }

    #[test]
    fn request_trace_sane() {
        let s = Scenario::paper(ArrivalRate::High, 42);
        let reqs = s.requests();
        // 350 min at 30/h ⇒ expect ~175 requests.
        assert!(
            (100..=260).contains(&reqs.len()),
            "unexpected request count {}",
            reqs.len()
        );
        assert!(reqs.iter().all(|r| r.device.index() < 26));
    }

    #[test]
    fn display_names() {
        assert_eq!(ArrivalRate::High.to_string(), "high (30/h)");
        assert!(Scenario::paper(ArrivalRate::Low, 0).name.contains("low"));
    }
}
