//! Evaluation scenarios: a fleet, a workload, a duration, a seed.
//!
//! The paper's Section III fixes one shape — 26 identical 1 kW devices,
//! minDCD = 15 min, maxDCP = 30 min, 350-minute experiments at three
//! aggregate request rates (30/h, 18/h, 4/h) — available as the one-line
//! preset [`Scenario::paper`]. Everything else composes through
//! [`ScenarioBuilder`]: heterogeneous fleets via [`crate::fleet::FleetSpec`]
//! and time-varying workloads via [`Workload`].

use crate::arrivals::{PoissonArrivals, TraceArrivals};
use crate::fleet::{DeviceClass, FleetSpec, ScenarioError};
use crate::household::{generate_household, DailyProfile};
use crate::signal::PowerCapProfile;
use han_device::request::Request;
use han_sim::time::{SimDuration, SimTime};
use std::fmt;

/// The paper's three arrival-rate regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalRate {
    /// 4 requests per hour.
    Low,
    /// 18 requests per hour.
    Moderate,
    /// 30 requests per hour.
    High,
}

impl ArrivalRate {
    /// Requests per hour for this regime.
    pub fn per_hour(self) -> f64 {
        match self {
            ArrivalRate::Low => 4.0,
            ArrivalRate::Moderate => 18.0,
            ArrivalRate::High => 30.0,
        }
    }

    /// All regimes in the order of the paper's x-axes.
    pub fn all() -> [ArrivalRate; 3] {
        [ArrivalRate::Low, ArrivalRate::Moderate, ArrivalRate::High]
    }
}

impl fmt::Display for ArrivalRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalRate::Low => write!(f, "low (4/h)"),
            ArrivalRate::Moderate => write!(f, "moderate (18/h)"),
            ArrivalRate::High => write!(f, "high (30/h)"),
        }
    }
}

/// The request source driving a scenario.
///
/// Unifies the constant-rate Poisson process of the paper's evaluation,
/// the inhomogeneous time-of-day process from [`crate::household`], and
/// fixed replay traces under one generator interface.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Homogeneous Poisson arrivals at a constant aggregate rate.
    Poisson {
        /// Aggregate request rate, per hour.
        rate_per_hour: f64,
    },
    /// Inhomogeneous Poisson arrivals following a 24-hour rate profile
    /// (morning/evening household peaks), via thinning.
    Daily(DailyProfile),
    /// A fixed request trace, replayed as-is (the seed is ignored).
    Trace(TraceArrivals),
}

impl Workload {
    /// Generates the request trace over `duration` across `device_count`
    /// devices, deterministically in `seed`.
    pub fn generate(&self, device_count: usize, duration: SimDuration, seed: u64) -> Vec<Request> {
        match self {
            Workload::Poisson { rate_per_hour } => {
                PoissonArrivals::new(*rate_per_hour, device_count).generate(duration, seed)
            }
            Workload::Daily(profile) => generate_household(profile, device_count, duration, seed),
            Workload::Trace(trace) => trace.requests().to_vec(),
        }
    }

    /// Mean aggregate arrival rate, requests per hour, over `[0, duration)`
    /// (daily profiles integrate only the simulated window; traces average
    /// their request count over it).
    pub fn mean_rate_per_hour(&self, duration: SimDuration) -> f64 {
        match self {
            Workload::Poisson { rate_per_hour } => *rate_per_hour,
            Workload::Daily(profile) => profile.mean_rate_over(duration),
            Workload::Trace(trace) => {
                let hours = duration.as_hours_f64();
                if hours == 0.0 {
                    0.0
                } else {
                    trace.requests().len() as f64 / hours
                }
            }
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        if let Workload::Poisson { rate_per_hour } = self {
            if !rate_per_hour.is_finite() || *rate_per_hour < 0.0 {
                return Err(ScenarioError::InvalidRate {
                    rate_per_hour: *rate_per_hour,
                });
            }
        }
        Ok(())
    }
}

/// A complete experiment scenario: fleet + workload + duration + seed.
///
/// Build one with [`Scenario::builder`], or use the presets
/// [`Scenario::paper`] and [`Scenario::typical_day`]. Fields are public so
/// sweeps can derive variants with struct-update syntax
/// (`Scenario { seed, ..template.clone() }`).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Descriptive name used in reports.
    pub name: String,
    /// The device fleet under management.
    pub fleet: FleetSpec,
    /// The request source.
    pub workload: Workload,
    /// Experiment duration (paper: 350 min).
    pub duration: SimDuration,
    /// Workload RNG seed.
    pub seed: u64,
    /// Optional grid-imposed admission cap the home's coordinated planner
    /// must respect (the per-home face of a feeder-level signal; see
    /// [`crate::signal`]). `None` — the default everywhere — leaves the
    /// planner exactly as the paper specifies it. The cap shapes admission
    /// only: endangered obligations are still forced, so deadlines never
    /// depend on the signal.
    pub power_cap: Option<PowerCapProfile>,
}

impl Scenario {
    /// Starts building a scenario.
    ///
    /// # Examples
    ///
    /// ```
    /// use han_workload::fleet::DeviceClass;
    /// use han_workload::scenario::Scenario;
    /// use han_device::duty_cycle::DutyCycleConstraints;
    /// use han_device::ApplianceKind;
    /// use han_sim::time::SimDuration;
    ///
    /// let scenario = Scenario::builder("two-class home")
    ///     .class(DeviceClass::new("ac", ApplianceKind::AirConditioner, 1.5,
    ///                             DutyCycleConstraints::paper(), 2))
    ///     .class(DeviceClass::new("heater", ApplianceKind::WaterHeater, 2.0,
    ///                             DutyCycleConstraints::paper(), 1))
    ///     .poisson(12.0)
    ///     .duration(SimDuration::from_mins(120))
    ///     .seed(7)
    ///     .build()?;
    /// assert_eq!(scenario.device_count(), 3);
    /// assert!(!scenario.requests().is_empty());
    /// # Ok::<(), han_workload::fleet::ScenarioError>(())
    /// ```
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            classes: Vec::new(),
            fleet: None,
            workload: None,
            duration: SimDuration::from_mins(350),
            seed: 0,
            power_cap: None,
        }
    }

    /// The paper's scenario at a given arrival-rate regime: 26 × 1 kW
    /// devices, 15/30 min constraints, 350 minutes.
    pub fn paper(rate: ArrivalRate, seed: u64) -> Self {
        Scenario {
            name: format!("paper {rate}"),
            fleet: FleetSpec::paper(),
            workload: Workload::Poisson {
                rate_per_hour: rate.per_hour(),
            },
            duration: SimDuration::from_mins(350),
            seed,
            power_cap: None,
        }
    }

    /// A 24-hour day on the paper's fleet driven by the
    /// [`DailyProfile::typical_household`] time-of-day profile — quiet
    /// nights, a morning spike and a strong evening peak.
    pub fn typical_day(seed: u64) -> Self {
        Scenario {
            name: "typical day".into(),
            fleet: FleetSpec::paper(),
            workload: Workload::Daily(DailyProfile::typical_household()),
            duration: SimDuration::from_hours(24),
            seed,
            power_cap: None,
        }
    }

    /// Number of devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.fleet.device_count()
    }

    /// Generates this scenario's request trace.
    pub fn requests(&self) -> Vec<Request> {
        self.workload
            .generate(self.fleet.device_count(), self.duration, self.seed)
    }

    /// Expected average load implied by the workload, in kW: every request
    /// obliges one minDCD instance of one uniformly random device.
    pub fn expected_average_load_kw(&self) -> f64 {
        self.workload.mean_rate_per_hour(self.duration) * self.fleet.mean_energy_per_request_kwh()
    }

    /// Validates the scenario's own fields (workload and duration; the
    /// fleet is valid by construction — [`FleetSpec::new`] is the only way
    /// to build one).
    ///
    /// Scenarios from [`Scenario::builder`] are already validated; this
    /// re-checks after direct field edits.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] for the first violated constraint.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.workload.validate()?;
        if self.duration.is_zero() {
            return Err(ScenarioError::ZeroDuration);
        }
        if let Workload::Trace(trace) = &self.workload {
            validate_trace_window(trace.requests(), self.duration)?;
        }
        Ok(())
    }
}

/// Checks a fixed request trace against the simulated window: arrivals must
/// be monotone non-decreasing and land within `[0, duration]`.
///
/// [`TraceArrivals`] sorts on construction, so traces built through it are
/// monotone already — the check guards direct field edits (a `Scenario`
/// whose `workload` was swapped in place) and the online ingest path, which
/// replays externally supplied arrivals under the same contract.
///
/// # Errors
///
/// [`ScenarioError::InvalidTrace`] naming the first offending arrival.
pub fn validate_trace_window(
    requests: &[Request],
    duration: SimDuration,
) -> Result<(), ScenarioError> {
    let end = SimTime::ZERO + duration;
    let mut last = SimTime::ZERO;
    for r in requests {
        if r.arrival < last {
            return Err(ScenarioError::InvalidTrace {
                reason: format!(
                    "arrival {} for {} precedes an earlier arrival {}",
                    r.arrival, r.device, last
                ),
            });
        }
        if r.arrival > end {
            return Err(ScenarioError::InvalidTrace {
                reason: format!(
                    "arrival {} for {} is outside the simulated window (ends {})",
                    r.arrival, r.device, end
                ),
            });
        }
        last = r.arrival;
    }
    Ok(())
}

/// Validating builder for [`Scenario`].
///
/// Collect device classes with [`class`](ScenarioBuilder::class) (or set a
/// whole [`fleet`](ScenarioBuilder::fleet)), pick a workload, then
/// [`build`](ScenarioBuilder::build). All validation reports a typed
/// [`ScenarioError`] — nothing panics on bad input.
///
/// # Examples
///
/// The minimal happy path — one device class, a Poisson workload:
///
/// ```
/// use han_device::duty_cycle::DutyCycleConstraints;
/// use han_device::ApplianceKind;
/// use han_sim::time::SimDuration;
/// use han_workload::fleet::DeviceClass;
/// use han_workload::scenario::Scenario;
///
/// let scenario = Scenario::builder("one geyser")
///     .class(DeviceClass::new("geyser", ApplianceKind::WaterHeater, 2.0,
///                             DutyCycleConstraints::paper(), 1))
///     .poisson(6.0)
///     .duration(SimDuration::from_mins(90))
///     .build()?;
/// assert_eq!(scenario.device_count(), 1);
/// # Ok::<(), han_workload::fleet::ScenarioError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    classes: Vec<DeviceClass>,
    fleet: Option<FleetSpec>,
    workload: Option<Workload>,
    duration: SimDuration,
    seed: u64,
    power_cap: Option<PowerCapProfile>,
}

impl ScenarioBuilder {
    /// Appends a device class to the fleet (ids continue contiguously).
    pub fn class(mut self, class: DeviceClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Uses an already-assembled fleet; classes added with
    /// [`class`](ScenarioBuilder::class) are appended after it.
    pub fn fleet(mut self, fleet: FleetSpec) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Selects constant-rate Poisson arrivals.
    pub fn poisson(self, rate_per_hour: f64) -> Self {
        self.workload(Workload::Poisson { rate_per_hour })
    }

    /// Selects inhomogeneous time-of-day arrivals.
    pub fn daily(self, profile: DailyProfile) -> Self {
        self.workload(Workload::Daily(profile))
    }

    /// Selects any workload source.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the experiment duration (default: the paper's 350 minutes).
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the workload RNG seed (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Imposes a grid-side admission cap on the home's coordinated planner
    /// (default: none — the paper's unconstrained planner).
    pub fn power_cap(mut self, cap: PowerCapProfile) -> Self {
        self.power_cap = Some(cap);
        self
    }

    /// Validates and assembles the scenario.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] if the fleet is empty or invalid, no workload was
    /// selected, a rate is invalid, or the duration is zero.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let mut classes = match self.fleet {
            Some(fleet) => fleet.classes().to_vec(),
            None => Vec::new(),
        };
        classes.extend(self.classes);
        let scenario = Scenario {
            name: self.name,
            fleet: FleetSpec::new(classes)?,
            workload: self.workload.ok_or(ScenarioError::MissingWorkload)?,
            duration: self.duration,
            seed: self.seed,
            power_cap: self.power_cap,
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_device::appliance::{ApplianceKind, DeviceId};
    use han_device::duty_cycle::DutyCycleConstraints;
    use han_sim::time::SimTime;

    #[test]
    fn rates_match_paper() {
        assert_eq!(ArrivalRate::Low.per_hour(), 4.0);
        assert_eq!(ArrivalRate::Moderate.per_hour(), 18.0);
        assert_eq!(ArrivalRate::High.per_hour(), 30.0);
        assert_eq!(ArrivalRate::all().len(), 3);
    }

    #[test]
    fn paper_scenario_parameters() {
        let s = Scenario::paper(ArrivalRate::High, 1);
        assert_eq!(s.device_count(), 26);
        assert_eq!(s.duration, SimDuration::from_mins(350));
        for spec in s.fleet.specs() {
            assert_eq!(spec.power.as_kw(), 1.0);
            assert_eq!(spec.constraints.min_dcd(), SimDuration::from_mins(15));
            assert_eq!(spec.constraints.max_dcp(), SimDuration::from_mins(30));
        }
        assert_eq!(
            s.workload,
            Workload::Poisson {
                rate_per_hour: 30.0
            }
        );
    }

    #[test]
    fn expected_average_loads() {
        // 30/h × 1 kW × 0.25 h = 7.5 kW; 18/h → 4.5 kW; 4/h → 1 kW.
        let high = Scenario::paper(ArrivalRate::High, 1).expected_average_load_kw();
        let mod_ = Scenario::paper(ArrivalRate::Moderate, 1).expected_average_load_kw();
        let low = Scenario::paper(ArrivalRate::Low, 1).expected_average_load_kw();
        assert!((high - 7.5).abs() < 1e-12);
        assert!((mod_ - 4.5).abs() < 1e-12);
        assert!((low - 1.0).abs() < 1e-12);
    }

    #[test]
    fn request_trace_sane() {
        let s = Scenario::paper(ArrivalRate::High, 42);
        let reqs = s.requests();
        // 350 min at 30/h ⇒ expect ~175 requests.
        assert!(
            (100..=260).contains(&reqs.len()),
            "unexpected request count {}",
            reqs.len()
        );
        assert!(reqs.iter().all(|r| r.device.index() < 26));
    }

    #[test]
    fn paper_requests_identical_to_raw_poisson() {
        // The preset must stay byte-identical to the pre-fleet API's
        // direct PoissonArrivals path (same seed stream, same assignment).
        let s = Scenario::paper(ArrivalRate::Moderate, 9);
        let direct = PoissonArrivals::new(18.0, 26).generate(s.duration, 9);
        assert_eq!(s.requests(), direct);
    }

    #[test]
    fn typical_day_preset_wires_daily_profile() {
        let s = Scenario::typical_day(3);
        assert_eq!(s.duration, SimDuration::from_hours(24));
        assert!(matches!(s.workload, Workload::Daily(_)));
        let reqs = s.requests();
        assert!(!reqs.is_empty());
        // Evening-heavy: more requests in 18–22 h than 0–5 h.
        let evening = reqs
            .iter()
            .filter(|r| (18..22).contains(&(r.arrival.as_secs() / 3600)))
            .count();
        let night = reqs
            .iter()
            .filter(|r| (r.arrival.as_secs() / 3600) < 5)
            .count();
        assert!(evening > night, "evening {evening} vs night {night}");
        // Identical to the raw household generator.
        assert_eq!(
            reqs,
            generate_household(
                &DailyProfile::typical_household(),
                26,
                SimDuration::from_hours(24),
                3
            )
        );
    }

    #[test]
    fn builder_composes_heterogeneous_scenarios() {
        let s = Scenario::builder("mixed")
            .class(DeviceClass::new(
                "ac",
                ApplianceKind::AirConditioner,
                1.5,
                DutyCycleConstraints::paper(),
                2,
            ))
            .class(DeviceClass::new(
                "fridge",
                ApplianceKind::Fridge,
                0.15,
                DutyCycleConstraints::paper(),
                1,
            ))
            .poisson(10.0)
            .duration(SimDuration::from_mins(60))
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(s.device_count(), 3);
        assert_eq!(s.seed, 5);
        assert!(s.requests().iter().all(|r| r.device.index() < 3));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn builder_fleet_plus_classes_appends() {
        let s = Scenario::builder("extended paper")
            .fleet(FleetSpec::paper())
            .class(DeviceClass::new(
                "heater",
                ApplianceKind::WaterHeater,
                2.0,
                DutyCycleConstraints::paper(),
                2,
            ))
            .poisson(4.0)
            .build()
            .unwrap();
        assert_eq!(s.device_count(), 28);
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        let err = Scenario::builder("no fleet").poisson(4.0).build();
        assert_eq!(err, Err(ScenarioError::EmptyFleet));

        let err = Scenario::builder("no workload")
            .class(DeviceClass::paper(2))
            .build();
        assert_eq!(err, Err(ScenarioError::MissingWorkload));

        let err = Scenario::builder("bad rate")
            .class(DeviceClass::paper(2))
            .poisson(-3.0)
            .build();
        assert!(matches!(err, Err(ScenarioError::InvalidRate { .. })));

        let err = Scenario::builder("zero duration")
            .class(DeviceClass::paper(2))
            .poisson(4.0)
            .duration(SimDuration::ZERO)
            .build();
        assert_eq!(err, Err(ScenarioError::ZeroDuration));
    }

    #[test]
    fn trace_workload_replays_fixed_requests() {
        let trace = TraceArrivals::new(vec![
            Request::new(DeviceId(1), SimTime::from_mins(10)),
            Request::new(DeviceId(0), SimTime::from_mins(5)),
        ]);
        let s = Scenario::builder("replay")
            .class(DeviceClass::paper(2))
            .workload(Workload::Trace(trace))
            .duration(SimDuration::from_mins(30))
            .build()
            .unwrap();
        let reqs = s.requests();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].device, DeviceId(0));
        // Mean rate of a trace: 2 requests over 0.5 h = 4/h.
        assert!((s.workload.mean_rate_per_hour(s.duration) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn trace_outside_window_rejected() {
        let trace = TraceArrivals::new(vec![
            Request::new(DeviceId(0), SimTime::from_mins(5)),
            Request::new(DeviceId(1), SimTime::from_mins(45)),
        ]);
        let err = Scenario::builder("late replay")
            .class(DeviceClass::paper(2))
            .workload(Workload::Trace(trace))
            .duration(SimDuration::from_mins(30))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidTrace { .. }));
        assert!(err.to_string().contains("outside the simulated window"));
        // An arrival exactly at the window end is legal (inclusive bound,
        // matching the simulation's inclusive final round).
        let trace = TraceArrivals::new(vec![Request::new(DeviceId(0), SimTime::from_mins(30))]);
        assert!(Scenario::builder("edge replay")
            .class(DeviceClass::paper(1))
            .workload(Workload::Trace(trace))
            .duration(SimDuration::from_mins(30))
            .build()
            .is_ok());
    }

    #[test]
    fn trace_window_helper_rejects_unsorted_slices() {
        // TraceArrivals sorts, but the helper also guards raw slices fed
        // through the online ingest path.
        let reqs = vec![
            Request::new(DeviceId(0), SimTime::from_mins(10)),
            Request::new(DeviceId(1), SimTime::from_mins(5)),
        ];
        let err = validate_trace_window(&reqs, SimDuration::from_mins(30)).unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidTrace { .. }));
        assert!(err.to_string().contains("precedes"));
        assert!(validate_trace_window(&[], SimDuration::from_mins(1)).is_ok());
    }

    #[test]
    fn builder_carries_power_cap() {
        let s = Scenario::builder("capped")
            .class(DeviceClass::paper(3))
            .poisson(4.0)
            .power_cap(PowerCapProfile::constant(2.0).unwrap())
            .build()
            .unwrap();
        assert_eq!(
            s.power_cap.as_ref().map(|c| c.cap_at(SimTime::ZERO)),
            Some(2.0)
        );
        // Presets and the default builder stay uncapped.
        assert_eq!(Scenario::paper(ArrivalRate::Low, 0).power_cap, None);
        assert_eq!(Scenario::typical_day(0).power_cap, None);
    }

    #[test]
    fn display_names() {
        assert_eq!(ArrivalRate::High.to_string(), "high (30/h)");
        assert!(Scenario::paper(ArrivalRate::Low, 0).name.contains("low"));
    }
}
