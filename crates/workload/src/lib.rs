//! # han-workload — request workloads for the HAN experiments
//!
//! * [`arrivals`] — homogeneous Poisson arrivals
//!   ([`arrivals::PoissonArrivals`], the paper's "randomly arriving"
//!   requests), trace replay and synchronized bursts;
//! * [`scenario`] — the paper's exact evaluation setups
//!   ([`scenario::Scenario::paper`]: 26 × 1 kW devices, 15/30 min
//!   constraints, 350 min, rates 4 / 18 / 30 per hour);
//! * [`household`] — inhomogeneous (time-of-day) workloads for the richer
//!   examples.
//!
//! # Examples
//!
//! ```
//! use han_workload::scenario::{ArrivalRate, Scenario};
//!
//! let scenario = Scenario::paper(ArrivalRate::High, 42);
//! let requests = scenario.requests();
//! assert!(!requests.is_empty());
//! assert!((scenario.expected_average_load_kw() - 7.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod household;
pub mod scenario;

pub use arrivals::{burst, PoissonArrivals, TraceArrivals};
pub use household::{generate_household, DailyProfile};
pub use scenario::{ArrivalRate, Scenario};
