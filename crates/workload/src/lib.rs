//! # han-workload — fleets and request workloads for the HAN experiments
//!
//! * [`fleet`] — what runs: [`fleet::DeviceClass`] (one group of identical
//!   appliances) composed into a validated, possibly heterogeneous
//!   [`fleet::FleetSpec`], with the typed [`fleet::ScenarioError`];
//! * [`arrivals`] — homogeneous Poisson arrivals
//!   ([`arrivals::PoissonArrivals`], the paper's "randomly arriving"
//!   requests), trace replay and synchronized bursts;
//! * [`household`] — inhomogeneous (time-of-day) arrival profiles;
//! * [`signal`] — grid-facing admission caps
//!   ([`signal::PowerCapProfile`]): the per-home face of a feeder-level
//!   coordination signal, consumed by the planner in `han-core`;
//! * [`scenario`] — fleet + workload + duration + seed, composed through
//!   the validating [`scenario::ScenarioBuilder`]; the paper's exact
//!   evaluation setup ([`scenario::Scenario::paper`]: 26 × 1 kW devices,
//!   15/30 min constraints, 350 min, rates 4 / 18 / 30 per hour) and the
//!   time-of-day [`scenario::Scenario::typical_day`] are one-line presets;
//! * [`telemetry`] — externally observed events
//!   ([`telemetry::TelemetryEvent`]: arrivals, early releases, cap/tariff
//!   changes, churn and blackouts) with the text grammar the online
//!   service mode in `han-core` ingests and replays.
//!
//! # Examples
//!
//! ```
//! use han_workload::scenario::{ArrivalRate, Scenario};
//!
//! let scenario = Scenario::paper(ArrivalRate::High, 42);
//! let requests = scenario.requests();
//! assert!(!requests.is_empty());
//! assert!((scenario.expected_average_load_kw() - 7.5).abs() < 1e-9);
//! ```
//!
//! A heterogeneous fleet on a time-of-day workload:
//!
//! ```
//! use han_device::duty_cycle::DutyCycleConstraints;
//! use han_device::ApplianceKind;
//! use han_sim::time::SimDuration;
//! use han_workload::fleet::DeviceClass;
//! use han_workload::household::DailyProfile;
//! use han_workload::scenario::Scenario;
//!
//! let scenario = Scenario::builder("household")
//!     .class(DeviceClass::new("ac", ApplianceKind::AirConditioner, 1.5,
//!                             DutyCycleConstraints::paper(), 2))
//!     .class(DeviceClass::new("geyser", ApplianceKind::WaterHeater, 2.0,
//!                             DutyCycleConstraints::paper(), 1))
//!     .daily(DailyProfile::typical_household())
//!     .duration(SimDuration::from_hours(24))
//!     .build()?;
//! assert_eq!(scenario.device_count(), 3);
//! # Ok::<(), han_workload::fleet::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arrivals;
pub mod fleet;
pub mod household;
pub mod scenario;
pub mod signal;
pub mod telemetry;

pub use arrivals::{burst, PoissonArrivals, TraceArrivals};
pub use fleet::{DeviceClass, DeviceSpec, FleetSpec, ScenarioError};
pub use household::{generate_household, DailyProfile};
pub use scenario::{validate_trace_window, ArrivalRate, Scenario, ScenarioBuilder, Workload};
pub use signal::PowerCapProfile;
pub use telemetry::{validate_telemetry, TelemetryEvent};
