//! # han-obs — the observability plane
//!
//! Structured, *observationally inert* instrumentation for the HAN
//! engines: a zero-cost-when-disabled hook API ([`Obs`] / [`Observer`]),
//! an atomic metrics [`registry::Registry`] with Prometheus text-format
//! exposition, a bounded [`flight::FlightRecorder`] ring of recent
//! structured events (dumped as JSONL when a fault fires or on demand),
//! and an opt-in Chrome `trace_event` span log ([`trace::TraceWriter`]).
//!
//! ## The inertness contract
//!
//! Instrumentation must never change what a simulation computes: an
//! instrumented run is digest-, trace- and CP-stats-identical to an
//! uninstrumented one on both engines (proptest-pinned in
//! `han-core/tests/prop_obs.rs`). The hooks therefore only *read*
//! engine state and publish copies of it — no hook result ever flows
//! back into a scheduling or delivery decision, and no wall-clock value
//! enters sim semantics. Wall-clock appears in exactly two places, both
//! outside the deterministic core: the daemon's operational latency
//! histograms ([`Hist::IngestLatencyUs`], [`Hist::ReplanLatencyUs`])
//! and the diagnostic span log.
//!
//! ## Zero cost when disabled
//!
//! The engine threads an [`Obs`] handle — a cheap-to-clone
//! `Option<Arc<dyn Observer>>` — through its layers. Every hook method
//! is `#[inline]` and early-outs on `None`, so a run without an
//! attached sink pays one predicted branch per *publish boundary*
//! (never per round-loop iteration: subsystems count in plain `u64`
//! fields and the driver publishes at span boundaries). The perf bin's
//! `observability` section gates both directions: disabled overhead
//! within noise, enabled overhead ≤ 5% on the paper-config round loop.
//!
//! # Examples
//!
//! ```
//! use han_obs::{Counter, Obs, ObsConfig, ObsSink};
//! use std::sync::Arc;
//!
//! // Disabled: every hook is a no-op.
//! let off = Obs::off();
//! off.add(Counter::PlannerInvocations, 1); // goes nowhere
//! assert!(!off.enabled());
//!
//! // Enabled: hooks land in the sink's registry.
//! let sink = Arc::new(ObsSink::new(ObsConfig::default()));
//! let obs = Obs::new(sink.clone());
//! obs.add(Counter::PlannerInvocations, 3);
//! assert_eq!(sink.registry().counter(Counter::PlannerInvocations), 3);
//! assert!(sink.exposition().contains("han_planner_invocations_total 3"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod flight;
pub mod registry;
pub mod sink;
pub mod trace;

pub use flight::{FlightEvent, FlightRecorder};
pub use registry::Registry;
pub use sink::{ObsConfig, ObsSink};
pub use trace::TraceWriter;

use std::sync::Arc;
use std::time::Instant;

/// The engine layer a metric or flight event originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// The coordinated planner (memoized grouped planning).
    Planner,
    /// The content-addressed, pooled view store.
    Pool,
    /// The communication plane (ideal / lossy / packet models).
    Cp,
    /// The discrete-event engine backend.
    Engine,
    /// The inter-home feeder coordinator.
    Feeder,
    /// The online service driver (`hansim serve`).
    Online,
    /// The fault plane (node churn, CP outages, signal dropout).
    Fault,
    /// The round driver itself.
    Sim,
}

impl Subsystem {
    /// Stable lower-case label, used in flight-recorder JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Planner => "planner",
            Subsystem::Pool => "pool",
            Subsystem::Cp => "cp",
            Subsystem::Engine => "engine",
            Subsystem::Feeder => "feeder",
            Subsystem::Online => "online",
            Subsystem::Fault => "fault",
            Subsystem::Sim => "sim",
        }
    }
}

macro_rules! metric_enum {
    (
        $(#[$outer:meta])*
        $name:ident {
            $( $(#[$doc:meta])* $variant:ident => ($metric:literal, $help:literal), )*
        }
    ) => {
        $(#[$outer])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $( $(#[$doc])* $variant, )*
        }

        impl $name {
            /// Every variant, in declaration (and exposition) order.
            pub const ALL: &'static [$name] = &[ $( $name::$variant, )* ];

            /// The Prometheus metric name.
            pub fn metric_name(self) -> &'static str {
                match self { $( $name::$variant => $metric, )* }
            }

            /// The one-line `# HELP` text.
            pub fn help(self) -> &'static str {
                match self { $( $name::$variant => $help, )* }
            }

            /// Dense index into the registry's storage.
            pub(crate) fn index(self) -> usize {
                self as usize
            }
        }
    };
}

metric_enum! {
    /// Monotonic counters. Cumulative subsystem counts (planner, pool,
    /// CP) are *published* — the registry stores the subsystem's own
    /// running total — while incremental sources add deltas; either way
    /// the exposed series is monotonic within a process.
    Counter {
        /// Planner invocations: every `plan_at_level` call (memo hit or miss).
        PlannerInvocations => ("han_planner_invocations_total", "Planner invocations (memo hits and misses)"),
        /// Plan-memo hits inside the planner's validity horizon.
        PlannerMemoHits => ("han_planner_memo_hits_total", "Plan-memo hits inside the validity horizon"),
        /// Cap changes that left the memo intact (horizon not crossed).
        PlannerHorizonEarlyOuts => ("han_planner_horizon_early_outs_total", "Cap changes absorbed without invalidating the plan memo"),
        /// View-pool entries created (a view forked off shared content).
        PoolForks => ("han_pool_forks_total", "View-pool entries created (view forks)"),
        /// Sole-owner in-place view edits (the copy-free CoW half).
        PoolInPlaceEdits => ("han_pool_in_place_edits_total", "Sole-owner in-place view edits"),
        /// Record deliveries the CP attempted ((node, origin) refreshes).
        CpAttemptedRecords => ("han_cp_attempted_records_total", "Record refreshes attempted by the communication plane"),
        /// Record deliveries that arrived.
        CpDeliveredRecords => ("han_cp_delivered_records_total", "Record refreshes delivered"),
        /// Record deliveries lost to the CP model.
        CpDroppedRecords => ("han_cp_dropped_records_total", "Record refreshes dropped by the CP model"),
        /// Rounds blacked out by a scripted CP outage.
        CpOutageRounds => ("han_cp_outage_rounds_total", "Rounds under a communication-plane outage"),
        /// Rounds executed so far.
        RoundsExecuted => ("han_sim_rounds_total", "Simulation rounds executed"),
        /// Rounds in which the fleet disagreed on the schedule.
        DivergentRounds => ("han_sim_divergent_rounds_total", "Rounds with disagreeing schedules"),
        /// Event-engine `Inject` events fired.
        EngineEventsInject => ("han_engine_events_inject_total", "Event engine: Inject events fired"),
        /// Event-engine `Fault` events fired.
        EngineEventsFault => ("han_engine_events_fault_total", "Event engine: Fault events fired"),
        /// Event-engine `RoundStart` events fired.
        EngineEventsRoundStart => ("han_engine_events_round_start_total", "Event engine: RoundStart events fired"),
        /// Event-engine `Flood` events fired.
        EngineEventsFlood => ("han_engine_events_flood_total", "Event engine: Flood events fired"),
        /// Event-engine `Deliver` events fired.
        EngineEventsDeliver => ("han_engine_events_deliver_total", "Event engine: Deliver events fired"),
        /// Event-engine `Plan` events fired.
        EngineEventsPlan => ("han_engine_events_plan_total", "Event engine: Plan events fired"),
        /// Event-engine `RoundEnd` events fired.
        EngineEventsRoundEnd => ("han_engine_events_round_end_total", "Event engine: RoundEnd events fired"),
        /// Feeder coordination iterations executed.
        FeederIterations => ("han_feeder_iterations_total", "Feeder coordination iterations executed"),
        /// Telemetry events absorbed by the round loop's inject phase.
        OnlineEventsAbsorbed => ("han_online_events_absorbed_total", "Injected telemetry events absorbed at round boundaries"),
        /// Rounds executed across all homes of a city run (city level).
        CityRounds => ("han_city_rounds_total", "Rounds executed across all homes of a city run"),
        /// Rounds executed per shard, summed (must equal the city total).
        CityShardRounds => ("han_city_shard_rounds_total", "Rounds executed by city shards (sum over shards)"),
        /// `HANFAGG1` record frames received from city worker processes.
        CityMpFrames => ("han_city_mp_frames_total", "Record frames received from city workers"),
        /// Framed payload bytes received from city worker processes.
        CityMpPayloadBytes => ("han_city_mp_payload_bytes_total", "Framed payload bytes received from city workers"),
        /// Dead city workers relaunched by the supervisor.
        CityMpRestarts => ("han_city_mp_restarts_total", "Dead city workers relaunched by the supervisor"),
    }
}

metric_enum! {
    /// Point-in-time gauges (last published value wins; `set_max` keeps
    /// the high-water mark instead).
    Gauge {
        /// Distinct views currently alive in the pool.
        PoolLiveViews => ("han_pool_live_views", "Distinct views currently alive in the view pool"),
        /// High-water mark of concurrently live distinct views.
        PoolPeakViews => ("han_pool_peak_views", "Peak concurrently live distinct views"),
        /// Deepest event-engine heap observed.
        EngineHeapDepthPeak => ("han_engine_heap_depth_peak", "Peak pending-event heap depth of the event engine"),
        /// The feeder iterate committed by the coordinator.
        FeederSelectedIteration => ("han_feeder_selected_iteration", "Feeder iterate committed (0 = signal-free baseline)"),
        /// Why feeder coordination stopped (0 converged, 1 max iterations, 2 oscillating).
        FeederStopReason => ("han_feeder_stop_reason", "Feeder stop reason (0 converged, 1 max iterations, 2 oscillating)"),
        /// Injected actions still waiting for their absorbing round.
        OnlinePendingInjections => ("han_online_pending_injections", "Injected actions awaiting their round"),
        /// Homes on the most-loaded shard of the last city run.
        CityShardHomes => ("han_city_shard_homes", "Homes on the most-loaded shard of a city run"),
        /// Shard load imbalance, permille (1000 = perfectly balanced;
        /// max shard devices x shards x 1000 / total devices).
        CityShardImbalancePermille => ("han_city_shard_imbalance_permille", "City shard imbalance, permille (1000 = balanced)"),
        /// Worker processes in the last multi-process city fleet.
        CityMpWorkers => ("han_city_mp_workers", "Worker processes in the last city fleet"),
        /// Per-worker wall-clock imbalance, permille (1000 = balanced;
        /// total wall x 1000 / (workers x slowest worker)).
        CityMpWallImbalancePermille => ("han_city_mp_wall_imbalance_permille", "City worker wall imbalance, permille (1000 = balanced)"),
    }
}

metric_enum! {
    /// Fixed-bucket histograms (powers of two; deterministic layout).
    /// The two latency histograms are the daemon's *operational* wall
    /// clock — by design outside sim semantics (see the crate docs).
    Hist {
        /// Wall-clock latency of one telemetry ingest, µs.
        IngestLatencyUs => ("han_online_ingest_latency_us", "Wall-clock latency of one telemetry ingest (us)"),
        /// Wall-clock latency of one ADVANCE replan span, µs.
        ReplanLatencyUs => ("han_online_replan_latency_us", "Wall-clock latency of one advance/replan span (us)"),
        /// Telemetry events absorbed at one round boundary.
        AbsorbedPerBoundary => ("han_online_absorbed_per_boundary", "Telemetry events absorbed at one round boundary"),
        /// Feeder peak per coordination iterate, watts.
        FeederIteratePeakW => ("han_feeder_iterate_peak_watts", "Feeder peak per coordination iterate (W)"),
    }
}

/// The hook surface the engine calls into. Every method has a no-op
/// default, so a sink implements only what it stores; the production
/// sink is [`ObsSink`] (registry + flight recorder + optional spans).
pub trait Observer: Send + Sync {
    /// Adds `delta` to a monotonic counter.
    fn counter_add(&self, _counter: Counter, _delta: u64) {}
    /// Publishes a subsystem's own running total for a counter.
    fn counter_publish(&self, _counter: Counter, _total: u64) {}
    /// Sets a gauge to `value`.
    fn gauge_set(&self, _gauge: Gauge, _value: u64) {}
    /// Raises a gauge to `value` if it exceeds the stored one.
    fn gauge_max(&self, _gauge: Gauge, _value: u64) {}
    /// Records `value` into a fixed-bucket histogram.
    fn observe(&self, _hist: Hist, _value: u64) {}
    /// Records a structured flight event.
    fn event(&self, _round: u64, _subsystem: Subsystem, _kind: &'static str, _payload: String) {}
    /// Whether [`Observer::span`] wants to be fed (span timing costs a
    /// wall-clock read per phase, so callers gate on this).
    fn wants_spans(&self) -> bool {
        false
    }
    /// Records one timed span (diagnostic wall clock, never sim time).
    fn span(&self, _name: &'static str, _round: u64, _start: Instant, _end: Instant) {}
}

/// The cheap handle the engine threads through its layers: `None` means
/// observability is off and every hook is an inlined early-out.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn Observer>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// The disabled handle (the default everywhere).
    pub const fn off() -> Obs {
        Obs { sink: None }
    }

    /// Attaches a sink; all hooks flow into it from here on.
    pub fn new(sink: Arc<dyn Observer>) -> Obs {
        Obs { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Adds `delta` to a monotonic counter.
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter_add(counter, delta);
        }
    }

    /// Publishes a subsystem's running total for a counter.
    #[inline]
    pub fn publish(&self, counter: Counter, total: u64) {
        if let Some(sink) = &self.sink {
            sink.counter_publish(counter, total);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn gauge(&self, gauge: Gauge, value: u64) {
        if let Some(sink) = &self.sink {
            sink.gauge_set(gauge, value);
        }
    }

    /// Raises a gauge to a new high-water mark.
    #[inline]
    pub fn gauge_max(&self, gauge: Gauge, value: u64) {
        if let Some(sink) = &self.sink {
            sink.gauge_max(gauge, value);
        }
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&self, hist: Hist, value: u64) {
        if let Some(sink) = &self.sink {
            sink.observe(hist, value);
        }
    }

    /// Records a flight event. The payload closure runs only when a sink
    /// is attached, so disabled runs never build the string.
    #[inline]
    pub fn event(
        &self,
        round: u64,
        subsystem: Subsystem,
        kind: &'static str,
        payload: impl FnOnce() -> String,
    ) {
        if let Some(sink) = &self.sink {
            sink.event(round, subsystem, kind, payload());
        }
    }

    /// Whether span timing is wanted (see [`Observer::wants_spans`]).
    #[inline]
    pub fn wants_spans(&self) -> bool {
        self.sink.as_ref().is_some_and(|s| s.wants_spans())
    }

    /// Starts a span clock — `None` unless a sink wants spans, so the
    /// disabled cost is one branch.
    #[inline]
    pub fn span_begin(&self) -> Option<Instant> {
        if self.wants_spans() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a span started by [`Obs::span_begin`]. A `None` start (the
    /// disabled case) is a no-op.
    #[inline]
    pub fn span_end(&self, name: &'static str, round: u64, start: Option<Instant>) {
        if let (Some(sink), Some(start)) = (&self.sink, start) {
            sink.span(name, round, start, Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_cheap() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        assert!(!obs.wants_spans());
        assert!(obs.span_begin().is_none());
        // The payload closure must not run when disabled.
        obs.event(0, Subsystem::Sim, "never", || {
            panic!("payload built while disabled")
        });
        obs.add(Counter::RoundsExecuted, 1);
        obs.gauge(Gauge::PoolLiveViews, 1);
        obs.observe(Hist::AbsorbedPerBoundary, 1);
    }

    #[test]
    fn enabled_handle_routes_to_the_sink() {
        let sink = Arc::new(ObsSink::new(ObsConfig::default()));
        let obs = Obs::new(sink.clone());
        assert!(obs.enabled());
        obs.add(Counter::PlannerMemoHits, 2);
        obs.add(Counter::PlannerMemoHits, 3);
        obs.publish(Counter::PlannerInvocations, 7);
        obs.gauge(Gauge::PoolLiveViews, 4);
        obs.gauge_max(Gauge::EngineHeapDepthPeak, 9);
        obs.gauge_max(Gauge::EngineHeapDepthPeak, 5);
        obs.observe(Hist::AbsorbedPerBoundary, 3);
        let r = sink.registry();
        assert_eq!(r.counter(Counter::PlannerMemoHits), 5);
        assert_eq!(r.counter(Counter::PlannerInvocations), 7);
        assert_eq!(r.gauge(Gauge::PoolLiveViews), 4);
        assert_eq!(r.gauge(Gauge::EngineHeapDepthPeak), 9);
        assert_eq!(r.hist_count(Hist::AbsorbedPerBoundary), 1);
        assert_eq!(r.hist_sum(Hist::AbsorbedPerBoundary), 3);
    }

    #[test]
    fn subsystem_labels_are_stable() {
        assert_eq!(Subsystem::Planner.as_str(), "planner");
        assert_eq!(Subsystem::Fault.as_str(), "fault");
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL
            .iter()
            .map(|c| c.metric_name())
            .chain(Gauge::ALL.iter().map(|g| g.metric_name()))
            .chain(Hist::ALL.iter().map(|h| h.metric_name()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
    }
}
