//! The flight recorder: a bounded ring of recent structured events,
//! kept cheap enough to stay on in production and dumped as JSONL for
//! post-incident diagnosis.
//!
//! The ring records only *sparse* events — fault edges, absorbed
//! telemetry, divergence onsets, recovery — never per-round chatter, so
//! a bounded buffer of a few hundred entries spans the interesting
//! history of a long run. When full, the oldest events are evicted and
//! counted in [`FlightRecorder::dropped`], so a dump is explicit about
//! what it no longer holds.

use crate::Subsystem;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// Default ring capacity: enough for the fault/injection history of a
/// long window without unbounded growth.
pub const DEFAULT_CAPACITY: usize = 256;

/// One structured flight event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Round counter when the event fired.
    pub round: u64,
    /// The engine layer that produced it.
    pub subsystem: Subsystem,
    /// Stable event kind (e.g. `fault-active`, `telemetry-absorbed`).
    pub kind: &'static str,
    /// Free-form `key=value` payload.
    pub payload: String,
}

impl FlightEvent {
    /// Renders the event as one JSON object (one JSONL line, no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.payload.len());
        let _ = write!(
            out,
            "{{\"round\":{},\"subsystem\":\"{}\",\"kind\":\"{}\",\"payload\":\"",
            self.round,
            self.subsystem.as_str(),
            self.kind
        );
        escape_json_into(&self.payload, &mut out);
        out.push_str("\"}");
        out
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct Ring {
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

/// The bounded ring buffer itself. Interior-mutable behind one mutex:
/// recording is off the per-round hot path (sparse events only), and a
/// dump snapshots under the same lock.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, event: FlightEvent) {
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted since creation (history the ring no longer holds).
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("flight ring poisoned").dropped
    }

    /// Snapshots the ring oldest-first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let ring = self.ring.lock().expect("flight ring poisoned");
        ring.events.iter().cloned().collect()
    }

    /// Renders the ring as JSONL, oldest event first (one JSON object
    /// per line; empty string when the ring is empty).
    pub fn jsonl(&self) -> String {
        let events = self.snapshot();
        let mut out = String::new();
        for ev in &events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL dump to `path` (truncating). Used by the fault
    /// auto-dump and the CLI's `--flight` flag.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64, kind: &'static str) -> FlightEvent {
        FlightEvent {
            round,
            subsystem: Subsystem::Fault,
            kind,
            payload: format!("round={round}"),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(2);
        rec.record(ev(1, "a"));
        rec.record(ev(2, "b"));
        rec.record(ev(3, "c"));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        let snap = rec.snapshot();
        assert_eq!(snap[0].round, 2);
        assert_eq!(snap[1].round, 3);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let rec = FlightRecorder::new(8);
        rec.record(ev(1, "fault-active"));
        rec.record(FlightEvent {
            round: 2,
            subsystem: Subsystem::Online,
            kind: "telemetry-absorbed",
            payload: "quote=\" backslash=\\ tab=\t".into(),
        });
        let jsonl = rec.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"round\":1,\"subsystem\":\"fault\",\"kind\":\"fault-active\",\"payload\":\"round=1\"}"
        );
        assert!(lines[1].contains("\\\""));
        assert!(lines[1].contains("\\\\"));
        assert!(lines[1].contains("\\t"));
    }

    #[test]
    fn empty_ring_dumps_empty() {
        let rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        assert_eq!(rec.jsonl(), "");
    }
}
