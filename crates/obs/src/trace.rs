//! Opt-in full-run span log in Chrome `trace_event` JSON format, so a
//! round can be opened in a trace viewer (`chrome://tracing`, Perfetto).
//!
//! Spans are *diagnostic wall clock*: timestamps are microseconds since
//! the writer's creation, never simulated time, and tracing is excluded
//! from the enabled-overhead perf gate (it costs two `Instant` reads
//! per phase by design). It is behaviorally inert like every other
//! hook: span recording reads engine state, never writes it.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// One completed span, µs-resolution offsets from the writer's epoch.
#[derive(Debug, Clone, Copy)]
struct Span {
    name: &'static str,
    round: u64,
    ts_us: u64,
    dur_us: u64,
}

/// Collects spans and renders them as a Chrome `trace_event` JSON
/// document (`{"traceEvents":[...]}`, complete-event `ph:"X"` entries).
pub struct TraceWriter {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
}

impl Default for TraceWriter {
    fn default() -> Self {
        TraceWriter::new()
    }
}

impl TraceWriter {
    /// An empty writer; its creation instant is the trace epoch.
    pub fn new() -> TraceWriter {
        TraceWriter {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Records one completed span. `start`/`end` are converted to
    /// offsets from the epoch (clamped to zero if older than it).
    pub fn span(&self, name: &'static str, round: u64, start: Instant, end: Instant) {
        let ts_us = start
            .checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_micros() as u64);
        let dur_us = end
            .checked_duration_since(start)
            .map_or(0, |d| d.as_micros() as u64);
        self.spans.lock().expect("trace spans poisoned").push(Span {
            name,
            round,
            ts_us,
            dur_us,
        });
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace spans poisoned").len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the full trace document. Span names are static engine
    /// identifiers and need no JSON escaping.
    pub fn to_json(&self) -> String {
        let spans = self.spans.lock().expect("trace spans poisoned");
        let mut out = String::with_capacity(32 + spans.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"round\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                 \"ts\":{},\"dur\":{},\"args\":{{\"round\":{}}}}}",
                s.name, s.ts_us, s.dur_us, s.round
            );
        }
        out.push_str("]}");
        out
    }

    /// Writes the trace document to `path` (truncating).
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_complete_events() {
        let w = TraceWriter::new();
        let t0 = Instant::now();
        let t1 = t0 + std::time::Duration::from_micros(5);
        w.span("plan", 3, t0, t1);
        w.span("end", 3, t1, t1);
        assert_eq!(w.len(), 2);
        let json = w.to_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"plan\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"round\":3}"));
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let w = TraceWriter::new();
        assert!(w.is_empty());
        assert_eq!(
            w.to_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
