//! The production [`Observer`]: registry + flight recorder + optional
//! span trace, with the fault-triggered auto-dump wired in.

use crate::flight::{FlightEvent, FlightRecorder, DEFAULT_CAPACITY};
use crate::registry::Registry;
use crate::trace::TraceWriter;
use crate::{Counter, Gauge, Hist, Observer, Subsystem};
use std::path::PathBuf;
use std::time::Instant;

/// Construction options for an [`ObsSink`].
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Flight-ring capacity (`0` → [`DEFAULT_CAPACITY`]).
    pub flight_capacity: usize,
    /// Dump the flight ring to this file whenever a fault-plane event
    /// is recorded (best-effort: I/O failures never reach the engine).
    pub flight_auto_dump: Option<PathBuf>,
    /// Collect a Chrome `trace_event` span log (costs two wall-clock
    /// reads per phase — diagnostic use, excluded from the perf gate).
    pub trace_spans: bool,
}

/// Registry + flight recorder + optional trace writer behind one
/// [`Observer`] implementation. Wrap it in an `Arc` and hand clones to
/// [`Obs::new`](crate::Obs::new) and to whatever serves the exposition.
pub struct ObsSink {
    registry: Registry,
    flight: FlightRecorder,
    trace: Option<TraceWriter>,
    flight_auto_dump: Option<PathBuf>,
}

impl ObsSink {
    /// Builds a sink per `config`.
    pub fn new(config: ObsConfig) -> ObsSink {
        let capacity = if config.flight_capacity == 0 {
            DEFAULT_CAPACITY
        } else {
            config.flight_capacity
        };
        ObsSink {
            registry: Registry::new(),
            flight: FlightRecorder::new(capacity),
            trace: config.trace_spans.then(TraceWriter::new),
            flight_auto_dump: config.flight_auto_dump,
        }
    }

    /// The metrics store.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight-recorder ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The span trace, when enabled.
    pub fn trace(&self) -> Option<&TraceWriter> {
        self.trace.as_ref()
    }

    /// Prometheus text exposition of the registry.
    pub fn exposition(&self) -> String {
        self.registry.exposition()
    }
}

impl Observer for ObsSink {
    fn counter_add(&self, counter: Counter, delta: u64) {
        self.registry.counter_add(counter, delta);
    }

    fn counter_publish(&self, counter: Counter, total: u64) {
        self.registry.counter_publish(counter, total);
    }

    fn gauge_set(&self, gauge: Gauge, value: u64) {
        self.registry.gauge_set(gauge, value);
    }

    fn gauge_max(&self, gauge: Gauge, value: u64) {
        self.registry.gauge_max(gauge, value);
    }

    fn observe(&self, hist: Hist, value: u64) {
        self.registry.observe(hist, value);
    }

    fn event(&self, round: u64, subsystem: Subsystem, kind: &'static str, payload: String) {
        self.flight.record(FlightEvent {
            round,
            subsystem,
            kind,
            payload,
        });
        // A fault firing is the moment an operator will want the recent
        // history: dump the ring now, while it still holds the lead-up.
        // Best-effort by contract — a full disk must not fail the run.
        if subsystem == Subsystem::Fault {
            if let Some(path) = &self.flight_auto_dump {
                let _ = self.flight.dump_to(path);
            }
        }
    }

    fn wants_spans(&self) -> bool {
        self.trace.is_some()
    }

    fn span(&self, name: &'static str, round: u64, start: Instant, end: Instant) {
        if let Some(trace) = &self.trace {
            trace.span(name, round, start, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_events_auto_dump_the_ring() {
        let dir = std::env::temp_dir().join("han-obs-sink-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("flight.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = ObsSink::new(ObsConfig {
            flight_auto_dump: Some(path.clone()),
            ..ObsConfig::default()
        });
        sink.event(
            5,
            Subsystem::Online,
            "telemetry-absorbed",
            "kind=arrival".into(),
        );
        assert!(!path.exists(), "non-fault events must not dump");
        sink.event(7, Subsystem::Fault, "fault-active", "down=1".into());
        let dump = std::fs::read_to_string(&path).expect("auto-dump written");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2, "dump holds the lead-up too");
        assert!(lines[0].contains("telemetry-absorbed"));
        assert!(lines[1].contains("fault-active"));
    }

    #[test]
    fn spans_only_collect_when_enabled() {
        let plain = ObsSink::new(ObsConfig::default());
        assert!(!plain.wants_spans());
        let tracing = ObsSink::new(ObsConfig {
            trace_spans: true,
            ..ObsConfig::default()
        });
        assert!(tracing.wants_spans());
        let t = Instant::now();
        tracing.span("plan", 1, t, t);
        assert_eq!(tracing.trace().expect("trace on").len(), 1);
    }
}
