//! The lock-free-ish metrics store: dense arrays of relaxed atomics,
//! one cell per [`Counter`] / [`Gauge`] and one fixed-bucket cell per
//! [`Hist`], with Prometheus text-format exposition.
//!
//! All bucket boundaries are powers of two fixed at compile time, so
//! the exposed layout is deterministic — two runs publishing the same
//! values produce byte-identical exposition. Ordering is `Relaxed`
//! everywhere: metrics tolerate torn cross-metric views (a scrape races
//! the run by design) but each individual cell is always a real value
//! some hook published.

use crate::{Counter, Gauge, Hist};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite histogram buckets; the exposition adds `+Inf`.
pub const HIST_BUCKETS: usize = 16;

/// Upper bound (`le`) of finite bucket `i`: `2^i`.
fn bucket_le(i: usize) -> u64 {
    1 << i
}

/// One histogram cell: finite bucket counts plus sum and count.
struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Samples above the last finite bucket (the `+Inf` bucket alone).
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        match (0..HIST_BUCKETS).find(|&i| value <= bucket_le(i)) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// The metrics store behind [`ObsSink`](crate::ObsSink): every cell an
/// atomic, no locks anywhere on the write path.
pub struct Registry {
    counters: Vec<AtomicU64>,
    gauges: Vec<AtomicU64>,
    hists: Vec<HistCell>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An all-zero registry covering every declared metric.
    pub fn new() -> Registry {
        Registry {
            counters: Counter::ALL.iter().map(|_| AtomicU64::new(0)).collect(),
            gauges: Gauge::ALL.iter().map(|_| AtomicU64::new(0)).collect(),
            hists: Hist::ALL.iter().map(|_| HistCell::new()).collect(),
        }
    }

    /// Adds `delta` to a counter.
    pub fn counter_add(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Publishes a subsystem's own running total for a counter. The
    /// stored value only ever moves forward, so a publisher re-posting
    /// an older snapshot cannot make the exposed series non-monotonic.
    pub fn counter_publish(&self, counter: Counter, total: u64) {
        self.counters[counter.index()].fetch_max(total, Ordering::Relaxed);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge.index()].store(value, Ordering::Relaxed);
    }

    /// Raises a gauge to `value` if it exceeds the stored one.
    pub fn gauge_max(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge.index()].fetch_max(value, Ordering::Relaxed);
    }

    /// Records a histogram sample.
    pub fn observe(&self, hist: Hist, value: u64) {
        self.hists[hist.index()].observe(value);
    }

    /// Current counter value.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Current gauge value.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()].load(Ordering::Relaxed)
    }

    /// Samples recorded into a histogram.
    pub fn hist_count(&self, hist: Hist) -> u64 {
        self.hists[hist.index()].count.load(Ordering::Relaxed)
    }

    /// Sum of all samples recorded into a histogram.
    pub fn hist_sum(&self, hist: Hist) -> u64 {
        self.hists[hist.index()].sum.load(Ordering::Relaxed)
    }

    /// Renders the whole registry in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` preambles, cumulative histogram buckets).
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        for &c in Counter::ALL {
            let name = c.metric_name();
            let _ = writeln!(out, "# HELP {name} {}", c.help());
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", self.counter(c));
        }
        for &g in Gauge::ALL {
            let name = g.metric_name();
            let _ = writeln!(out, "# HELP {name} {}", g.help());
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", self.gauge(g));
        }
        for &h in Hist::ALL {
            let name = h.metric_name();
            let cell = &self.hists[h.index()];
            let _ = writeln!(out, "# HELP {name} {}", h.help());
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0;
            for i in 0..HIST_BUCKETS {
                cumulative += cell.buckets[i].load(Ordering::Relaxed);
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket_le(i));
            }
            cumulative += cell.overflow.load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", self.hist_sum(h));
            let _ = writeln!(out, "{name}_count {}", self.hist_count(h));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_publish_monotonically() {
        let r = Registry::new();
        r.counter_add(Counter::CpOutageRounds, 2);
        r.counter_add(Counter::CpOutageRounds, 3);
        assert_eq!(r.counter(Counter::CpOutageRounds), 5);
        r.counter_publish(Counter::PlannerInvocations, 10);
        r.counter_publish(Counter::PlannerInvocations, 7); // stale repost
        assert_eq!(r.counter(Counter::PlannerInvocations), 10);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capture_overflow() {
        let r = Registry::new();
        r.observe(Hist::AbsorbedPerBoundary, 1);
        r.observe(Hist::AbsorbedPerBoundary, 2);
        r.observe(Hist::AbsorbedPerBoundary, 3);
        r.observe(Hist::AbsorbedPerBoundary, 1 << 20); // beyond the last finite bucket
        assert_eq!(r.hist_count(Hist::AbsorbedPerBoundary), 4);
        assert_eq!(r.hist_sum(Hist::AbsorbedPerBoundary), 6 + (1 << 20));
        let text = r.exposition();
        assert!(text.contains("han_online_absorbed_per_boundary_bucket{le=\"1\"} 1"));
        assert!(text.contains("han_online_absorbed_per_boundary_bucket{le=\"2\"} 2"));
        assert!(text.contains("han_online_absorbed_per_boundary_bucket{le=\"4\"} 3"));
        assert!(text.contains("han_online_absorbed_per_boundary_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("han_online_absorbed_per_boundary_count 4"));
    }

    #[test]
    fn exposition_covers_every_metric_with_preambles() {
        let r = Registry::new();
        let text = r.exposition();
        for &c in Counter::ALL {
            assert!(text.contains(&format!("# TYPE {} counter", c.metric_name())));
        }
        for &g in Gauge::ALL {
            assert!(text.contains(&format!("# TYPE {} gauge", g.metric_name())));
        }
        for &h in Hist::ALL {
            assert!(text.contains(&format!("# TYPE {} histogram", h.metric_name())));
        }
        // Every non-comment line is `name[{labels}] value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("metric value parses");
        }
    }
}
