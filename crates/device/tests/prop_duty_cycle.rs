//! Property-based tests of the duty-cycle state machine: for arbitrary
//! command sequences, the bookkeeping invariants must hold.

use han_device::duty_cycle::{DutyCycleConstraints, DutyCycler};
use han_device::status::StatusRecord;
use han_device::{DeviceId, DeviceInterface, Request};
use han_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// A random step applied to the cycler at a monotonically advancing time.
#[derive(Debug, Clone)]
enum Step {
    Advance(u64),
    Activate(u8),
    On,
    TryOff,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..1200).prop_map(Step::Advance),
            (1u8..3).prop_map(Step::Activate),
            Just(Step::On),
            Just(Step::TryOff),
        ],
        1..80,
    )
}

proptest! {
    #[test]
    fn cycler_invariants_hold_for_any_command_sequence(steps in arb_steps()) {
        let constraints = DutyCycleConstraints::paper();
        let mut cycler = DutyCycler::new(constraints);
        let mut now = SimTime::ZERO;
        for step in steps {
            match step {
                Step::Advance(secs) => {
                    now += SimDuration::from_secs(secs);
                    cycler.advance(now);
                }
                Step::Activate(w) => cycler.activate(now, u32::from(w)),
                Step::On => {
                    if cycler.is_active() {
                        cycler.set_on(now);
                    }
                }
                Step::TryOff => {
                    // May be refused; both outcomes are legal.
                    let _ = cycler.set_off(now);
                }
            }
            // Invariants after every step:
            // (1) ON implies active.
            prop_assert!(!cycler.is_on() || cycler.is_active());
            // (2) owed never exceeds minDCD.
            prop_assert!(cycler.owed(now) <= constraints.min_dcd());
            // (3) served in the current window never exceeds the window.
            prop_assert!(cycler.served_in_window(now) <= constraints.max_dcp());
            // (4) deadline, when present, is in the present or future
            //     after bookkeeping caught up.
            if let Some(d) = cycler.window_deadline() {
                prop_assert!(d + constraints.max_dcp() > now);
            }
            // (5) inactive state is fully reset.
            if !cycler.is_active() {
                prop_assert_eq!(cycler.owed(now), SimDuration::ZERO);
                prop_assert_eq!(cycler.windows_remaining(), 0);
                prop_assert!(cycler.arrival().is_none());
            }
        }
    }

    #[test]
    fn di_refuses_every_early_off(
        on_at in 0u64..600,
        off_at in 0u64..1800
    ) {
        let mut di = DeviceInterface::paper(DeviceId(0));
        di.handle_request(SimTime::ZERO, &Request::new(DeviceId(0), SimTime::ZERO))
            .expect("own device");
        let t_on = SimTime::from_secs(on_at);
        di.command(t_on, true);
        let t_off = SimTime::from_secs(on_at + off_at);
        let still_on = di.command(t_off, false);
        let instance = SimDuration::from_secs(off_at);
        if instance < SimDuration::from_mins(15) {
            prop_assert!(still_on, "early OFF must be refused");
            prop_assert_eq!(di.counters().refused_early_off, 1);
        } else {
            prop_assert!(!still_on, "completed instance must release");
            prop_assert_eq!(di.counters().refused_early_off, 0);
        }
    }

    #[test]
    fn status_round_trips_for_any_state(
        active in any::<bool>(),
        on in any::<bool>(),
        owed_s in 0u64..u16::MAX as u64,
        deadline_s in prop::option::of(0u64..4_000_000),
        windows in 0u32..255,
        arrival_s in prop::option::of(0u64..4_000_000),
        planned_s in prop::option::of(0u64..4_000_000),
        power in any::<u16>(),
    ) {
        let rec = StatusRecord {
            device: DeviceId(7),
            active,
            on: on && active,
            owed: SimDuration::from_secs(owed_s),
            deadline: deadline_s.map(SimTime::from_secs),
            windows_remaining: windows,
            arrival: arrival_s.map(SimTime::from_secs),
            planned_start: planned_s.map(SimTime::from_secs),
            power_w: power,
            min_dcd: SimDuration::from_mins(15),
            max_dcp: SimDuration::from_mins(30),
        };
        let decoded = StatusRecord::decode(&rec.encode()).expect("round trip");
        prop_assert_eq!(decoded, rec);
    }

    #[test]
    fn laxity_decreases_as_time_passes(now_min in 0u64..14) {
        let mut cycler = DutyCycler::new(DutyCycleConstraints::paper());
        cycler.activate(SimTime::ZERO, 1);
        let early = cycler.laxity_micros(SimTime::from_mins(now_min)).expect("owed");
        let later = cycler.laxity_micros(SimTime::from_mins(now_min + 1)).expect("owed");
        prop_assert!(later < early, "laxity must shrink while OFF");
    }
}
