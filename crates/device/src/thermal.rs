//! First-order thermal model for duty-cycled appliances.
//!
//! The paper notes that minDCD/maxDCP vary with environmental factors: an AC
//! chasing 20 °C against a 40 °C afternoon needs a shorter duty-cycle period
//! than one chasing 30 °C. This module provides the standard first-order RC
//! room model used in demand-response studies:
//!
//! ```text
//! dT/dt = (T_ambient − T) / τ  ±  g · u(t)
//! ```
//!
//! where `τ` is the thermal time constant, `g` the actuation rate of the
//! appliance (negative for cooling), and `u(t) ∈ {0, 1}` the element state.
//! It supports comfort metrics in the examples and lets tests derive the
//! duty fraction a thermostat would naturally produce.

use han_sim::time::SimDuration;

/// Direction a duty-cycled appliance drives temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermalAction {
    /// The element lowers temperature (air conditioner, fridge).
    Cooling,
    /// The element raises temperature (room/water heater).
    Heating,
}

/// A first-order thermal environment coupled to one appliance.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalModel {
    temperature_c: f64,
    ambient_c: f64,
    time_constant: SimDuration,
    actuation_c_per_hour: f64,
    action: ThermalAction,
}

impl ThermalModel {
    /// Creates a model at an initial temperature.
    ///
    /// `actuation_c_per_hour` is the magnitude of the appliance's pull on
    /// the temperature while ON.
    ///
    /// # Panics
    ///
    /// Panics if the time constant is zero or the actuation is negative.
    pub fn new(
        initial_c: f64,
        ambient_c: f64,
        time_constant: SimDuration,
        actuation_c_per_hour: f64,
        action: ThermalAction,
    ) -> Self {
        assert!(!time_constant.is_zero(), "time constant must be positive");
        assert!(
            actuation_c_per_hour >= 0.0,
            "actuation magnitude must be non-negative"
        );
        ThermalModel {
            temperature_c: initial_c,
            ambient_c,
            time_constant,
            actuation_c_per_hour,
            action,
        }
    }

    /// A typical bedroom with a split AC: 40 °C ambient, τ = 2 h, the AC
    /// pulls 8 °C/h while ON.
    pub fn indian_summer_room(initial_c: f64) -> Self {
        ThermalModel::new(
            initial_c,
            40.0,
            SimDuration::from_hours(2),
            8.0,
            ThermalAction::Cooling,
        )
    }

    /// Current temperature in °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Ambient temperature in °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Updates the ambient temperature (weather change).
    pub fn set_ambient_c(&mut self, ambient_c: f64) {
        self.ambient_c = ambient_c;
    }

    /// Advances the model by `dt` with the element ON or OFF.
    ///
    /// Uses the exact exponential solution of the linear ODE over the step,
    /// so step size does not affect accuracy.
    pub fn step(&mut self, dt: SimDuration, element_on: bool) {
        let tau_h = self.time_constant.as_hours_f64();
        let dt_h = dt.as_hours_f64();
        // Effective equilibrium: ambient shifted by the actuation term.
        let drive = if element_on {
            match self.action {
                ThermalAction::Cooling => -self.actuation_c_per_hour,
                ThermalAction::Heating => self.actuation_c_per_hour,
            }
        } else {
            0.0
        };
        let equilibrium = self.ambient_c + drive * tau_h;
        let decay = (-dt_h / tau_h).exp();
        self.temperature_c = equilibrium + (self.temperature_c - equilibrium) * decay;
    }

    /// The steady-state duty fraction a thermostat holding `target_c` needs:
    /// the ratio of natural drift rate to actuation rate at the target.
    ///
    /// Returns a value clamped to `[0, 1]`; 1 means the appliance cannot
    /// hold the target even running continuously.
    pub fn required_duty_fraction(&self, target_c: f64) -> f64 {
        let tau_h = self.time_constant.as_hours_f64();
        // Natural drift toward ambient at the target, °C/h.
        let drift = (self.ambient_c - target_c).abs() / tau_h;
        if self.actuation_c_per_hour <= 0.0 {
            return 1.0;
        }
        (drift / self.actuation_c_per_hour).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drifts_to_ambient_when_off() {
        let mut m = ThermalModel::indian_summer_room(25.0);
        for _ in 0..100 {
            m.step(SimDuration::from_mins(30), false);
        }
        assert!((m.temperature_c() - 40.0).abs() < 0.01);
    }

    #[test]
    fn cooling_pulls_below_ambient() {
        let mut m = ThermalModel::indian_summer_room(40.0);
        m.step(SimDuration::from_hours(1), true);
        assert!(m.temperature_c() < 40.0);
    }

    #[test]
    fn heating_pushes_above_ambient() {
        let mut m = ThermalModel::new(
            15.0,
            10.0,
            SimDuration::from_hours(1),
            5.0,
            ThermalAction::Heating,
        );
        for _ in 0..50 {
            m.step(SimDuration::from_mins(30), true);
        }
        assert!(m.temperature_c() > 10.0 + 4.9, "{}", m.temperature_c());
    }

    #[test]
    fn exact_solution_is_step_invariant() {
        let mut coarse = ThermalModel::indian_summer_room(30.0);
        let mut fine = ThermalModel::indian_summer_room(30.0);
        coarse.step(SimDuration::from_hours(1), true);
        for _ in 0..60 {
            fine.step(SimDuration::from_mins(1), true);
        }
        assert!((coarse.temperature_c() - fine.temperature_c()).abs() < 1e-9);
    }

    #[test]
    fn duty_fraction_matches_paper_regime() {
        // The paper's 15/30 constraint implies a 50 % duty cycle; a room
        // whose drift is half the AC's pull needs exactly that.
        let m = ThermalModel::new(
            24.0,
            40.0,
            SimDuration::from_hours(2),
            4.0,
            ThermalAction::Cooling,
        );
        // Drift at 24 °C: (40-24)/2 = 8 °C/h... that exceeds 4 => clamp to 1.
        assert_eq!(m.required_duty_fraction(24.0), 1.0);
        let m2 = ThermalModel::new(
            24.0,
            40.0,
            SimDuration::from_hours(4),
            8.0,
            ThermalAction::Cooling,
        );
        // Drift (40-24)/4 = 4 °C/h against 8 °C/h pull: 50 % duty.
        assert!((m2.required_duty_fraction(24.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hotter_target_needs_less_duty() {
        let m = ThermalModel::indian_summer_room(30.0);
        let cold = m.required_duty_fraction(20.0);
        let warm = m.required_duty_fraction(30.0);
        assert!(cold > warm, "cold={cold} warm={warm}");
    }

    #[test]
    fn ambient_change_takes_effect() {
        let mut m = ThermalModel::indian_summer_room(30.0);
        m.set_ambient_c(20.0);
        for _ in 0..100 {
            m.step(SimDuration::from_mins(30), false);
        }
        assert!((m.temperature_c() - 20.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "time constant")]
    fn zero_tau_panics() {
        ThermalModel::new(20.0, 30.0, SimDuration::ZERO, 1.0, ThermalAction::Cooling);
    }
}
