//! The Device Interface (DI).
//!
//! The paper assumes every appliance connects to the mains through a
//! Device Interface: a smart plug carrying an 802.15.4 radio that (i)
//! accepts user requests, (ii) publishes the device's status into the
//! communication plane, and (iii) actuates the appliance's power element
//! according to the schedule, *refusing* commands that would violate the
//! minDCD safety constraint even if a (stale or diverged) schedule asks for
//! them.

use crate::appliance::{Appliance, DeviceClass, DeviceId};
use crate::duty_cycle::{AdvanceOutcome, DutyCycleConstraints, DutyCycler, DutyCyclerSnapshot};
use crate::power::Watts;
use crate::request::Request;
use crate::status::StatusRecord;
use han_sim::time::SimTime;
use std::fmt;

/// Errors applying a request to a Device Interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The request targets a different device.
    WrongDevice {
        /// This DI's device.
        this: DeviceId,
        /// The request's target.
        requested: DeviceId,
    },
    /// The appliance is Type-1 and not schedulable.
    NotSchedulable {
        /// The device in question.
        device: DeviceId,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::WrongDevice { this, requested } => {
                write!(f, "request for {requested} delivered to {this}")
            }
            RequestError::NotSchedulable { device } => {
                write!(f, "{device} is a Type-1 appliance and cannot be scheduled")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Counters of constraint events observed by a DI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiCounters {
    /// Windows that closed without their minDCD obligation met.
    pub deadline_misses: u32,
    /// Schedule commands refused because they would cut an instance short.
    pub refused_early_off: u32,
    /// Windows served to completion.
    pub windows_served: u32,
}

/// A Device Interface: one appliance plus its duty-cycle bookkeeping.
#[derive(Debug, Clone)]
pub struct DeviceInterface {
    appliance: Appliance,
    cycler: DutyCycler,
    counters: DiCounters,
    seq: u32,
    /// The start instant this device has committed its current-window
    /// minDCD instance to, chosen by the placement algorithm and published
    /// in the status record. Cleared on window rollover and deactivation.
    planned_start: Option<SimTime>,
    /// The last record handed to the communication plane, for change
    /// detection in [`DeviceInterface::publish`].
    last_published: Option<StatusRecord>,
}

impl DeviceInterface {
    /// Creates a DI for a schedulable (Type-2) appliance.
    ///
    /// # Panics
    ///
    /// Panics if the appliance is Type-1 — instant appliances do not carry
    /// duty-cycle state (model their load directly instead).
    pub fn new(appliance: Appliance, constraints: DutyCycleConstraints) -> Self {
        assert_eq!(
            appliance.class(),
            DeviceClass::Schedulable,
            "DeviceInterface requires a Type-2 appliance"
        );
        DeviceInterface {
            appliance,
            cycler: DutyCycler::new(constraints),
            counters: DiCounters::default(),
            seq: 0,
            planned_start: None,
            last_published: None,
        }
    }

    /// The paper's reproduction DI: 1 kW Type-2, minDCD 15 min, maxDCP 30 min.
    pub fn paper(id: DeviceId) -> Self {
        DeviceInterface::new(Appliance::paper_type2(id), DutyCycleConstraints::paper())
    }

    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.appliance.id()
    }

    /// The attached appliance.
    pub fn appliance(&self) -> &Appliance {
        &self.appliance
    }

    /// The duty-cycle bookkeeping (read access for schedulers).
    pub fn cycler(&self) -> &DutyCycler {
        &self.cycler
    }

    /// Constraint-event counters.
    pub fn counters(&self) -> DiCounters {
        self.counters
    }

    /// Whether the power element is ON.
    pub fn is_on(&self) -> bool {
        self.cycler.is_on()
    }

    /// Whether a request is being served.
    pub fn is_active(&self) -> bool {
        self.cycler.is_active()
    }

    /// Instantaneous power draw.
    pub fn power(&self) -> Watts {
        if self.is_on() {
            self.appliance.rated_power()
        } else {
            Watts::ZERO
        }
    }

    /// Accepts a user request, activating (or extending) the device.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError::WrongDevice`] if the request targets another
    /// device.
    pub fn handle_request(&mut self, now: SimTime, request: &Request) -> Result<(), RequestError> {
        if request.device != self.id() {
            return Err(RequestError::WrongDevice {
                this: self.id(),
                requested: request.device,
            });
        }
        self.cycler.activate(now, request.windows);
        self.seq += 1;
        Ok(())
    }

    /// Advances duty-cycle bookkeeping to `now`, closing expired windows.
    ///
    /// A window rollover (or deactivation) invalidates the committed
    /// placement — the next planning round places the new window's
    /// instance afresh.
    pub fn advance(&mut self, now: SimTime) -> AdvanceOutcome {
        let outcome = self.cycler.advance(now);
        self.counters.deadline_misses += outcome.deadline_misses;
        self.counters.windows_served += outcome.windows_closed - outcome.deadline_misses;
        if outcome.windows_closed > 0 {
            self.planned_start = None;
            self.seq += 1;
        }
        outcome
    }

    /// The committed instance start for the current window, if placed.
    pub fn planned_start(&self) -> Option<SimTime> {
        self.planned_start
    }

    /// Commits (or clears) the placement of this window's instance.
    ///
    /// Committing bumps the status version so the placement disseminates.
    pub fn set_planned_start(&mut self, start: Option<SimTime>) {
        if self.planned_start != start {
            self.planned_start = start;
            self.seq += 1;
        }
    }

    /// Applies a schedule decision: element ON or OFF.
    ///
    /// An OFF command that would cut a running minDCD instance short is
    /// **refused** (the element stays ON) and counted — this is the DI's
    /// safety interlock against diverged or stale schedules. Returns the
    /// element state after the command.
    pub fn command(&mut self, now: SimTime, on: bool) -> bool {
        if on {
            if self.is_active() && !self.is_on() {
                self.cycler.set_on(now);
                self.seq += 1;
            }
        } else if self.is_on() {
            match self.cycler.set_off(now) {
                Ok(()) => self.seq += 1,
                Err(_violation) => {
                    self.counters.refused_early_off += 1;
                }
            }
        }
        self.is_on()
    }

    /// Builds the status record to publish this round.
    ///
    /// The sequence number increments on every state change, so stale
    /// records never overwrite fresh ones in the item stores.
    pub fn status(&self, now: SimTime) -> StatusRecord {
        StatusRecord {
            device: self.id(),
            active: self.is_active(),
            on: self.is_on(),
            owed: self.cycler.owed(now),
            deadline: self.cycler.window_deadline(),
            windows_remaining: self.cycler.windows_remaining(),
            arrival: self.cycler.arrival(),
            planned_start: self.planned_start,
            power_w: u16::try_from(self.appliance.rated_power().value().round() as i64)
                .unwrap_or(u16::MAX),
            min_dcd: self.cycler.constraints().min_dcd(),
            max_dcp: self.cycler.constraints().max_dcp(),
        }
    }

    /// Builds and versions the record to hand to the communication plane.
    ///
    /// The version (`seq`) increments exactly when the record content
    /// changed since the previous publication, so receivers' freshest-wins
    /// merge ([`han-st`'s item stores]) accepts every real update — e.g.
    /// the continuously shrinking `owed` of a running device — while
    /// identical republications stay cheap.
    ///
    /// [`han-st`'s item stores]: StatusRecord
    pub fn publish(&mut self, now: SimTime) -> StatusRecord {
        let rec = self.status(now);
        if self.last_published.as_ref() != Some(&rec) {
            self.seq += 1;
        }
        self.last_published = Some(rec);
        rec
    }

    /// The current status version (monotone).
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Captures the DI's mutable state as plain data, for
    /// checkpoint/restore of a running simulation. The appliance itself is
    /// excluded — it is rebuilt from the fleet spec on reconstruction.
    pub fn snapshot(&self) -> DeviceInterfaceSnapshot {
        DeviceInterfaceSnapshot {
            cycler: self.cycler.snapshot(),
            counters: self.counters,
            seq: self.seq,
            planned_start: self.planned_start,
            last_published: self.last_published,
        }
    }

    /// Restores the state captured by [`DeviceInterface::snapshot`] onto a
    /// freshly built DI of the same appliance.
    pub fn restore(&mut self, snapshot: &DeviceInterfaceSnapshot) {
        self.cycler.restore(&snapshot.cycler);
        self.counters = snapshot.counters;
        self.seq = snapshot.seq;
        self.planned_start = snapshot.planned_start;
        self.last_published = snapshot.last_published;
    }
}

/// Plain-data snapshot of a [`DeviceInterface`]'s mutable state, captured
/// by [`DeviceInterface::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceInterfaceSnapshot {
    /// Duty-cycle bookkeeping.
    pub cycler: DutyCyclerSnapshot,
    /// Constraint-event counters.
    pub counters: DiCounters,
    /// Status version.
    pub seq: u32,
    /// Committed instance placement.
    pub planned_start: Option<SimTime>,
    /// Last record handed to the communication plane (exact, full
    /// resolution — required for publish-side change detection).
    pub last_published: Option<StatusRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_sim::time::SimDuration;

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    fn di() -> DeviceInterface {
        DeviceInterface::paper(DeviceId(1))
    }

    #[test]
    fn request_activates() {
        let mut d = di();
        d.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        assert!(d.is_active());
        assert!(!d.is_on());
        assert_eq!(d.power(), Watts::ZERO);
    }

    #[test]
    fn wrong_device_rejected() {
        let mut d = di();
        let err = d
            .handle_request(t(0), &Request::new(DeviceId(9), t(0)))
            .unwrap_err();
        assert!(matches!(err, RequestError::WrongDevice { .. }));
        assert!(err.to_string().contains("d9"));
    }

    #[test]
    fn command_on_draws_power() {
        let mut d = di();
        d.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        assert!(d.command(t(0), true));
        assert_eq!(d.power(), Watts::from_kw(1.0));
    }

    #[test]
    fn early_off_refused_and_counted() {
        let mut d = di();
        d.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        d.command(t(0), true);
        // 5 minutes in: OFF must be refused.
        assert!(d.command(t(5), false), "element must stay ON");
        assert_eq!(d.counters().refused_early_off, 1);
        // 15 minutes in: OFF is legal.
        assert!(!d.command(t(15), false));
        assert_eq!(d.counters().refused_early_off, 1);
    }

    #[test]
    fn on_while_inactive_is_ignored() {
        let mut d = di();
        assert!(!d.command(t(0), true), "inactive device must not switch on");
        assert_eq!(d.power(), Watts::ZERO);
    }

    #[test]
    fn advance_counts_misses_and_serves() {
        let mut d = di();
        d.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        d.command(t(0), true);
        d.command(t(15), false);
        let out = d.advance(t(30));
        assert!(out.deactivated);
        assert_eq!(d.counters().windows_served, 1);
        assert_eq!(d.counters().deadline_misses, 0);

        let mut d2 = di();
        d2.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        d2.advance(t(30));
        assert_eq!(d2.counters().deadline_misses, 1);
    }

    #[test]
    fn status_reflects_state() {
        let mut d = di();
        let idle = d.status(t(0));
        assert!(!idle.active);
        d.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        d.command(t(2), true);
        let s = d.status(t(10));
        assert!(s.active && s.on);
        assert_eq!(s.owed, SimDuration::from_mins(7));
        assert_eq!(s.deadline, Some(t(30)));
        assert_eq!(s.arrival, Some(t(0)));
    }

    #[test]
    fn seq_increments_on_changes() {
        let mut d = di();
        let s0 = d.seq();
        d.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        d.command(t(0), true);
        assert!(d.seq() > s0);
    }

    #[test]
    fn placement_lifecycle() {
        let mut d = di();
        d.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        assert_eq!(d.planned_start(), None);
        let s0 = d.seq();
        d.set_planned_start(Some(t(15)));
        assert_eq!(d.planned_start(), Some(t(15)));
        assert!(d.seq() > s0, "placement must disseminate");
        // Same placement again: no version bump.
        let s1 = d.seq();
        d.set_planned_start(Some(t(15)));
        assert_eq!(d.seq(), s1);
        // Window rollover clears the placement.
        d.advance(t(30));
        assert_eq!(d.planned_start(), None);
        // Status carries placement and power.
        let mut d2 = di();
        d2.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        d2.set_planned_start(Some(t(9)));
        let s = d2.status(t(1));
        assert_eq!(s.planned_start, Some(t(9)));
        assert_eq!(s.power_w, 1000);
    }

    #[test]
    fn snapshot_round_trips_running_device() {
        let mut d = di();
        d.handle_request(t(0), &Request::new(DeviceId(1), t(0)))
            .unwrap();
        d.command(t(0), true);
        d.set_planned_start(Some(t(3)));
        d.publish(t(4));
        let snap = d.snapshot();
        let mut restored = di();
        restored.restore(&snap);
        assert_eq!(restored.seq(), d.seq());
        assert_eq!(restored.planned_start(), d.planned_start());
        assert_eq!(restored.counters(), d.counters());
        assert_eq!(restored.status(t(10)), d.status(t(10)));
        // Publishing an unchanged record must not bump seq on either.
        let s = d.seq();
        d.publish(t(4));
        restored.publish(t(4));
        assert_eq!(d.seq(), s);
        assert_eq!(restored.seq(), s);
    }

    #[test]
    #[should_panic(expected = "Type-2")]
    fn type1_appliance_rejected() {
        DeviceInterface::new(
            Appliance::new(DeviceId(0), crate::appliance::ApplianceKind::Fan),
            DutyCycleConstraints::paper(),
        );
    }
}
