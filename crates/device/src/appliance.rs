//! The appliance catalogue.
//!
//! The paper splits household appliances in two classes:
//!
//! * **Type-1 (instant)** — must switch ON the moment the user asks: fans,
//!   TVs, laptops, hair-dryers. Their load is not schedulable.
//! * **Type-2 (schedulable)** — high-power devices that internally
//!   duty-cycle a power-hungry element (compressor, heating coil): air
//!   conditioners, room/water heaters, fridges. Their Device Interface may
//!   shift the element's ON periods in time within duty-cycle constraints.

use crate::power::Watts;
use std::fmt;

/// Identifier of an appliance / Device Interface pair.
///
/// In the paper's deployment device `i` is attached to the DI at network
/// node `i`, so this maps 1:1 to `han_net::NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Returns the id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<u32> for DeviceId {
    fn from(v: u32) -> Self {
        DeviceId(v)
    }
}

/// The paper's two appliance classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Type-1: turns ON instantly on request; not schedulable.
    Instant,
    /// Type-2: duty-cycled and schedulable within minDCD/maxDCP.
    Schedulable,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceClass::Instant => write!(f, "Type-1"),
            DeviceClass::Schedulable => write!(f, "Type-2"),
        }
    }
}

/// Common household appliance kinds with typical rated powers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApplianceKind {
    /// Ceiling or pedestal fan (Type-1).
    Fan,
    /// Television (Type-1).
    Television,
    /// Laptop / charger (Type-1).
    Laptop,
    /// Hair dryer — instant but power-hungry (Type-1).
    HairDryer,
    /// Blender / mixer (Type-1).
    Blender,
    /// Room lighting cluster (Type-1).
    Lighting,
    /// Split air conditioner compressor (Type-2).
    AirConditioner,
    /// Resistive room heater (Type-2).
    RoomHeater,
    /// Storage water heater (Type-2).
    WaterHeater,
    /// Refrigerator compressor (Type-2).
    Fridge,
    /// Water cooler (Type-2).
    WaterCooler,
}

impl ApplianceKind {
    /// The paper's class of this appliance.
    pub fn class(self) -> DeviceClass {
        match self {
            ApplianceKind::Fan
            | ApplianceKind::Television
            | ApplianceKind::Laptop
            | ApplianceKind::HairDryer
            | ApplianceKind::Blender
            | ApplianceKind::Lighting => DeviceClass::Instant,
            ApplianceKind::AirConditioner
            | ApplianceKind::RoomHeater
            | ApplianceKind::WaterHeater
            | ApplianceKind::Fridge
            | ApplianceKind::WaterCooler => DeviceClass::Schedulable,
        }
    }

    /// Typical rated power of the switched element.
    pub fn typical_power(self) -> Watts {
        match self {
            ApplianceKind::Fan => Watts(75.0),
            ApplianceKind::Television => Watts(120.0),
            ApplianceKind::Laptop => Watts(60.0),
            ApplianceKind::HairDryer => Watts(1200.0),
            ApplianceKind::Blender => Watts(400.0),
            ApplianceKind::Lighting => Watts(100.0),
            ApplianceKind::AirConditioner => Watts(1500.0),
            ApplianceKind::RoomHeater => Watts(1800.0),
            ApplianceKind::WaterHeater => Watts(2000.0),
            ApplianceKind::Fridge => Watts(150.0),
            ApplianceKind::WaterCooler => Watts(500.0),
        }
    }

    /// All catalogued kinds.
    pub fn all() -> &'static [ApplianceKind] {
        &[
            ApplianceKind::Fan,
            ApplianceKind::Television,
            ApplianceKind::Laptop,
            ApplianceKind::HairDryer,
            ApplianceKind::Blender,
            ApplianceKind::Lighting,
            ApplianceKind::AirConditioner,
            ApplianceKind::RoomHeater,
            ApplianceKind::WaterHeater,
            ApplianceKind::Fridge,
            ApplianceKind::WaterCooler,
        ]
    }
}

impl fmt::Display for ApplianceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ApplianceKind::Fan => "fan",
            ApplianceKind::Television => "television",
            ApplianceKind::Laptop => "laptop",
            ApplianceKind::HairDryer => "hair dryer",
            ApplianceKind::Blender => "blender",
            ApplianceKind::Lighting => "lighting",
            ApplianceKind::AirConditioner => "air conditioner",
            ApplianceKind::RoomHeater => "room heater",
            ApplianceKind::WaterHeater => "water heater",
            ApplianceKind::Fridge => "fridge",
            ApplianceKind::WaterCooler => "water cooler",
        };
        f.write_str(name)
    }
}

/// One concrete appliance instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Appliance {
    id: DeviceId,
    kind: ApplianceKind,
    rated_power: Watts,
}

impl Appliance {
    /// Creates an appliance with the kind's typical rated power.
    pub fn new(id: DeviceId, kind: ApplianceKind) -> Self {
        Appliance {
            id,
            kind,
            rated_power: kind.typical_power(),
        }
    }

    /// Creates an appliance with an explicit rated power.
    ///
    /// # Panics
    ///
    /// Panics if `rated_power` is negative or not finite.
    pub fn with_power(id: DeviceId, kind: ApplianceKind, rated_power: Watts) -> Self {
        assert!(
            rated_power.value().is_finite() && rated_power.value() >= 0.0,
            "rated power must be finite and non-negative"
        );
        Appliance {
            id,
            kind,
            rated_power,
        }
    }

    /// The paper's reproduction device: a generic 1 kW Type-2 appliance.
    pub fn paper_type2(id: DeviceId) -> Self {
        Appliance::with_power(id, ApplianceKind::AirConditioner, Watts::from_kw(1.0))
    }

    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The appliance kind.
    pub fn kind(&self) -> ApplianceKind {
        self.kind
    }

    /// The paper's class of this appliance.
    pub fn class(&self) -> DeviceClass {
        self.kind.class()
    }

    /// Power drawn by the switched element while ON.
    pub fn rated_power(&self) -> Watts {
        self.rated_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_paper() {
        assert_eq!(ApplianceKind::Fan.class(), DeviceClass::Instant);
        assert_eq!(ApplianceKind::HairDryer.class(), DeviceClass::Instant);
        assert_eq!(
            ApplianceKind::AirConditioner.class(),
            DeviceClass::Schedulable
        );
        assert_eq!(ApplianceKind::Fridge.class(), DeviceClass::Schedulable);
    }

    #[test]
    fn catalogue_is_complete_and_priced() {
        for &kind in ApplianceKind::all() {
            assert!(kind.typical_power().value() > 0.0, "{kind} has no power");
            assert!(!kind.to_string().is_empty());
        }
        assert_eq!(ApplianceKind::all().len(), 11);
    }

    #[test]
    fn paper_device_is_1kw_type2() {
        let a = Appliance::paper_type2(DeviceId(3));
        assert_eq!(a.rated_power(), Watts::from_kw(1.0));
        assert_eq!(a.class(), DeviceClass::Schedulable);
        assert_eq!(a.id(), DeviceId(3));
    }

    #[test]
    fn explicit_power_override() {
        let a = Appliance::with_power(DeviceId(0), ApplianceKind::Fridge, Watts(200.0));
        assert_eq!(a.rated_power(), Watts(200.0));
        assert_eq!(a.kind(), ApplianceKind::Fridge);
    }

    #[test]
    #[should_panic(expected = "rated power")]
    fn negative_power_panics() {
        Appliance::with_power(DeviceId(0), ApplianceKind::Fan, Watts(-5.0));
    }

    #[test]
    fn display_types() {
        assert_eq!(DeviceClass::Instant.to_string(), "Type-1");
        assert_eq!(DeviceClass::Schedulable.to_string(), "Type-2");
        assert_eq!(DeviceId(4).to_string(), "d4");
    }
}
