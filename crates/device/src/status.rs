//! The status record a Device Interface publishes each round.
//!
//! This is the datum MiniCast disseminates all-to-all: everything another DI
//! needs to schedule around this device. It has a compact, versioned wire
//! format (23 bytes) so that ~4 records fit in a single 802.15.4 frame
//! aggregate.
//!
//! Wire layout (little-endian):
//!
//! | bytes | field |
//! |---|---|
//! | 0 | device id (u8) |
//! | 1 | flags: bit0 = active, bit1 = element ON |
//! | 2–3 | ON time still owed in window, seconds (u16) |
//! | 4–7 | window deadline, seconds since start (u32; `MAX` = none) |
//! | 8 | windows remaining (u8, saturating) |
//! | 9–12 | request arrival, seconds since start (u32; `MAX` = none) |
//! | 13–16 | planned instance start, seconds (u32; `MAX` = none) |
//! | 17–18 | rated element power, watts (u16, saturating) |
//! | 19–20 | minDCD, seconds (u16, saturating) |
//! | 21–22 | maxDCP, seconds (u16, saturating) |

use crate::appliance::DeviceId;
use han_sim::time::{SimDuration, SimTime};
use std::fmt;

/// Encoded size of a [`StatusRecord`] on the wire.
pub const STATUS_WIRE_BYTES: usize = 23;

const NONE_U32: u32 = u32::MAX;

/// A device's shared scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusRecord {
    /// The publishing device.
    pub device: DeviceId,
    /// Whether a user request is being served.
    pub active: bool,
    /// Whether the power element is currently ON.
    pub on: bool,
    /// ON time still owed in the current window.
    pub owed: SimDuration,
    /// Current window deadline, while active.
    pub deadline: Option<SimTime>,
    /// Activity windows remaining, including the current one.
    pub windows_remaining: u32,
    /// Arrival time of the activating request, while active.
    pub arrival: Option<SimTime>,
    /// The start instant this device has committed its minDCD instance to
    /// (chosen by the collaborative placement algorithm), if any.
    pub planned_start: Option<SimTime>,
    /// Rated power of the switched element, in watts (used to weigh load
    /// balancing decisions across heterogeneous appliances).
    pub power_w: u16,
    /// This device's minDCD constraint (zero when inactive/unknown).
    pub min_dcd: SimDuration,
    /// This device's maxDCP constraint (zero when inactive/unknown).
    pub max_dcp: SimDuration,
}

/// Errors decoding a [`StatusRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStatusError {
    /// The byte slice was not exactly [`STATUS_WIRE_BYTES`] long.
    WrongLength {
        /// Bytes supplied.
        got: usize,
    },
    /// The flags byte used undefined bits.
    BadFlags {
        /// Offending byte.
        flags: u8,
    },
}

impl fmt::Display for DecodeStatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeStatusError::WrongLength { got } => {
                write!(
                    f,
                    "status record must be {STATUS_WIRE_BYTES} bytes, got {got}"
                )
            }
            DecodeStatusError::BadFlags { flags } => {
                write!(f, "undefined status flag bits in {flags:#04x}")
            }
        }
    }
}

impl std::error::Error for DecodeStatusError {}

impl StatusRecord {
    /// A record for an idle (inactive) device.
    pub fn idle(device: DeviceId) -> Self {
        StatusRecord {
            device,
            active: false,
            on: false,
            owed: SimDuration::ZERO,
            deadline: None,
            windows_remaining: 0,
            arrival: None,
            planned_start: None,
            power_w: 0,
            min_dcd: SimDuration::ZERO,
            max_dcp: SimDuration::ZERO,
        }
    }

    /// Serializes to the 23-byte wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(STATUS_WIRE_BYTES);
        self.encode_into(&mut out);
        out
    }

    /// Serializes to the 23-byte wire format, appending to `out` — lets
    /// per-round publishers reuse one buffer instead of allocating.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(STATUS_WIRE_BYTES);
        out.push(self.device.0 as u8);
        let mut flags = 0u8;
        if self.active {
            flags |= 0b01;
        }
        if self.on {
            flags |= 0b10;
        }
        out.push(flags);
        let owed_secs =
            u16::try_from(self.owed.as_secs().min(u64::from(u16::MAX))).expect("capped");
        out.extend_from_slice(&owed_secs.to_le_bytes());
        let deadline = self.deadline.map_or(NONE_U32, |d| {
            u32::try_from(d.as_secs().min(u64::from(NONE_U32 - 1))).expect("capped")
        });
        out.extend_from_slice(&deadline.to_le_bytes());
        out.push(u8::try_from(self.windows_remaining.min(255)).expect("capped"));
        let arrival = self.arrival.map_or(NONE_U32, |a| {
            u32::try_from(a.as_secs().min(u64::from(NONE_U32 - 1))).expect("capped")
        });
        out.extend_from_slice(&arrival.to_le_bytes());
        let planned = self.planned_start.map_or(NONE_U32, |p| {
            u32::try_from(p.as_secs().min(u64::from(NONE_U32 - 1))).expect("capped")
        });
        out.extend_from_slice(&planned.to_le_bytes());
        out.extend_from_slice(&self.power_w.to_le_bytes());
        let min_dcd =
            u16::try_from(self.min_dcd.as_secs().min(u64::from(u16::MAX))).expect("capped");
        out.extend_from_slice(&min_dcd.to_le_bytes());
        let max_dcp =
            u16::try_from(self.max_dcp.as_secs().min(u64::from(u16::MAX))).expect("capped");
        out.extend_from_slice(&max_dcp.to_le_bytes());
    }

    /// Decodes the 23-byte wire format.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeStatusError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeStatusError> {
        if bytes.len() != STATUS_WIRE_BYTES {
            return Err(DecodeStatusError::WrongLength { got: bytes.len() });
        }
        let flags = bytes[1];
        if flags & !0b11 != 0 {
            return Err(DecodeStatusError::BadFlags { flags });
        }
        let owed_secs = u16::from_le_bytes([bytes[2], bytes[3]]);
        let deadline = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let arrival = u32::from_le_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]);
        let planned = u32::from_le_bytes([bytes[13], bytes[14], bytes[15], bytes[16]]);
        let power_w = u16::from_le_bytes([bytes[17], bytes[18]]);
        let min_dcd = u16::from_le_bytes([bytes[19], bytes[20]]);
        let max_dcp = u16::from_le_bytes([bytes[21], bytes[22]]);
        Ok(StatusRecord {
            device: DeviceId(u32::from(bytes[0])),
            active: flags & 0b01 != 0,
            on: flags & 0b10 != 0,
            owed: SimDuration::from_secs(u64::from(owed_secs)),
            deadline: (deadline != NONE_U32).then(|| SimTime::from_secs(u64::from(deadline))),
            windows_remaining: u32::from(bytes[8]),
            arrival: (arrival != NONE_U32).then(|| SimTime::from_secs(u64::from(arrival))),
            planned_start: (planned != NONE_U32).then(|| SimTime::from_secs(u64::from(planned))),
            power_w,
            min_dcd: SimDuration::from_secs(u64::from(min_dcd)),
            max_dcp: SimDuration::from_secs(u64::from(max_dcp)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatusRecord {
        StatusRecord {
            device: DeviceId(7),
            active: true,
            on: true,
            owed: SimDuration::from_mins(8),
            deadline: Some(SimTime::from_mins(42)),
            windows_remaining: 2,
            arrival: Some(SimTime::from_mins(12)),
            planned_start: Some(SimTime::from_mins(27)),
            power_w: 1000,
            min_dcd: SimDuration::from_mins(15),
            max_dcp: SimDuration::from_mins(30),
        }
    }

    #[test]
    fn round_trip() {
        let rec = sample();
        let bytes = rec.encode();
        assert_eq!(bytes.len(), STATUS_WIRE_BYTES);
        let back = StatusRecord::decode(&bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn idle_round_trip() {
        let rec = StatusRecord::idle(DeviceId(0));
        let back = StatusRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back, rec);
        assert!(!back.active && !back.on);
        assert_eq!(back.deadline, None);
        assert_eq!(back.arrival, None);
        assert_eq!(back.planned_start, None);
    }

    #[test]
    fn wrong_length_rejected() {
        assert_eq!(
            StatusRecord::decode(&[0u8; 5]),
            Err(DecodeStatusError::WrongLength { got: 5 })
        );
    }

    #[test]
    fn bad_flags_rejected() {
        let mut bytes = sample().encode();
        bytes[1] = 0xF0;
        assert_eq!(
            StatusRecord::decode(&bytes),
            Err(DecodeStatusError::BadFlags { flags: 0xF0 })
        );
    }

    #[test]
    fn second_resolution_rounds_down() {
        let rec = StatusRecord {
            owed: SimDuration::from_millis(1500),
            ..sample()
        };
        let back = StatusRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back.owed, SimDuration::from_secs(1));
    }

    #[test]
    fn windows_saturate_at_255() {
        let rec = StatusRecord {
            windows_remaining: 1000,
            ..sample()
        };
        let back = StatusRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back.windows_remaining, 255);
    }

    #[test]
    fn error_display() {
        assert!(DecodeStatusError::WrongLength { got: 3 }
            .to_string()
            .contains("23"));
        assert!(DecodeStatusError::BadFlags { flags: 0xFF }
            .to_string()
            .contains("0xff"));
    }
}
