//! Electrical power and energy units.
//!
//! Newtypes prevent mixing watts with kilowatts or power with energy in the
//! load-management arithmetic ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use han_sim::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

/// Electrical energy in watt-hours.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WattHours(pub f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power from kilowatts.
    pub fn from_kw(kw: f64) -> Self {
        Watts(kw * 1000.0)
    }

    /// Returns the power in kilowatts.
    pub fn as_kw(self) -> f64 {
        self.0 / 1000.0
    }

    /// Returns the raw value in watts.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Energy delivered at this power over `duration`.
    pub fn energy_over(self, duration: SimDuration) -> WattHours {
        WattHours(self.0 * duration.as_hours_f64())
    }
}

impl WattHours {
    /// Zero energy.
    pub const ZERO: WattHours = WattHours(0.0);

    /// Returns the energy in kilowatt-hours.
    pub fn as_kwh(self) -> f64 {
        self.0 / 1000.0
    }

    /// Returns the raw value in watt-hours.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, Add::add)
    }
}

impl Add for WattHours {
    type Output = WattHours;
    fn add(self, rhs: WattHours) -> WattHours {
        WattHours(self.0 + rhs.0)
    }
}

impl AddAssign for WattHours {
    fn add_assign(&mut self, rhs: WattHours) {
        self.0 += rhs.0;
    }
}

impl Sum for WattHours {
    fn sum<I: Iterator<Item = WattHours>>(iter: I) -> WattHours {
        iter.fold(WattHours::ZERO, Add::add)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1000.0 {
            write!(f, "{:.2} kW", self.as_kw())
        } else {
            write!(f, "{:.0} W", self.0)
        }
    }
}

impl fmt::Display for WattHours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1000.0 {
            write!(f, "{:.2} kWh", self.as_kwh())
        } else {
            write!(f, "{:.0} Wh", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Watts::from_kw(1.5).value(), 1500.0);
        assert_eq!(Watts(2500.0).as_kw(), 2.5);
        assert_eq!(WattHours(3000.0).as_kwh(), 3.0);
    }

    #[test]
    fn energy_integration() {
        // 1 kW for 15 minutes = 0.25 kWh, the paper's per-request energy.
        let e = Watts::from_kw(1.0).energy_over(SimDuration::from_mins(15));
        assert!((e.as_kwh() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sums() {
        let total: Watts = [Watts(100.0), Watts(250.0), Watts(50.0)].into_iter().sum();
        assert_eq!(total, Watts(400.0));
        let e: WattHours = [WattHours(1.0), WattHours(2.0)].into_iter().sum();
        assert_eq!(e, WattHours(3.0));
    }

    #[test]
    fn display() {
        assert_eq!(Watts(1500.0).to_string(), "1.50 kW");
        assert_eq!(Watts(40.0).to_string(), "40 W");
        assert_eq!(WattHours(250.0).to_string(), "250 Wh");
        assert_eq!(WattHours(1250.0).to_string(), "1.25 kWh");
    }
}
