//! Duty-cycle constraints and per-device duty-cycle accounting.
//!
//! The paper constrains every Type-2 appliance with two parameters:
//!
//! * **minDCD** (*min-Duty-Cycle-Duration*) — once the power-hungry element
//!   switches ON it must stay ON at least this long (one *instance*);
//! * **maxDCP** (*max-Duty-Cycle-Period*) — while a device is *active*,
//!   every consecutive window of this length must contain at least one full
//!   minDCD of ON time.
//!
//! [`DutyCycler`] is the bookkeeping state machine each Device Interface
//! runs: it tracks activity windows, accumulated ON time, instance lengths,
//! deadlines and *laxity* — the slack before the device must be forced ON to
//! still meet its obligation. The scheduler in `han-core` is built entirely
//! on these queries.

use han_sim::time::{SimDuration, SimTime};
use std::fmt;

/// Validated duty-cycle constraint pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DutyCycleConstraints {
    min_dcd: SimDuration,
    max_dcp: SimDuration,
}

/// Errors constructing [`DutyCycleConstraints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintError {
    /// minDCD was zero.
    ZeroMinDcd,
    /// maxDCP was shorter than minDCD, making the obligation unsatisfiable.
    PeriodShorterThanDuration {
        /// The offending minDCD.
        min_dcd: SimDuration,
        /// The offending maxDCP.
        max_dcp: SimDuration,
    },
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::ZeroMinDcd => write!(f, "minDCD must be positive"),
            ConstraintError::PeriodShorterThanDuration { min_dcd, max_dcp } => {
                write!(f, "maxDCP {max_dcp} is shorter than minDCD {min_dcd}")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}

impl DutyCycleConstraints {
    /// Creates a constraint pair.
    ///
    /// # Errors
    ///
    /// Returns [`ConstraintError`] if `min_dcd` is zero or exceeds
    /// `max_dcp`.
    pub fn new(min_dcd: SimDuration, max_dcp: SimDuration) -> Result<Self, ConstraintError> {
        if min_dcd.is_zero() {
            return Err(ConstraintError::ZeroMinDcd);
        }
        if max_dcp < min_dcd {
            return Err(ConstraintError::PeriodShorterThanDuration { min_dcd, max_dcp });
        }
        Ok(DutyCycleConstraints { min_dcd, max_dcp })
    }

    /// The paper's evaluation parameters: minDCD 15 min, maxDCP 30 min.
    pub fn paper() -> Self {
        DutyCycleConstraints::new(SimDuration::from_mins(15), SimDuration::from_mins(30))
            .expect("paper constants are valid")
    }

    /// The minimum ON-instance duration.
    pub fn min_dcd(&self) -> SimDuration {
        self.min_dcd
    }

    /// The maximum duty-cycle period.
    pub fn max_dcp(&self) -> SimDuration {
        self.max_dcp
    }

    /// The steady-state duty fraction this pair implies (minDCD / maxDCP).
    pub fn duty_fraction(&self) -> f64 {
        self.min_dcd.as_secs_f64() / self.max_dcp.as_secs_f64()
    }
}

/// Result of advancing a [`DutyCycler`] across window boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdvanceOutcome {
    /// Windows that closed during the advance.
    pub windows_closed: u32,
    /// Closed windows whose minDCD obligation was not met.
    pub deadline_misses: u32,
    /// Whether the device deactivated (last window closed).
    pub deactivated: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum State {
    Inactive,
    Active {
        window_start: SimTime,
        windows_remaining: u32,
        /// ON time completed in the current window, excluding the running
        /// segment.
        served_in_window: SimDuration,
        /// Start of the running segment's contribution to the current
        /// window (normalized to ≥ `window_start`).
        on_since: Option<SimTime>,
        /// Physical start of the running ON instance (never normalized).
        instance_start: Option<SimTime>,
        arrival: SimTime,
    },
}

/// A plain-data snapshot of a [`DutyCycler`]'s activity state, for
/// checkpoint/restore of a running simulation. `None` means the cycler is
/// inactive; the field names mirror the internal bookkeeping exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DutyCyclerSnapshot {
    /// The active-state fields, or `None` while inactive.
    pub active: Option<ActiveSnapshot>,
}

/// The bookkeeping of one active window, captured by
/// [`DutyCycler::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSnapshot {
    /// Start of the current maxDCP window.
    pub window_start: SimTime,
    /// Activity windows still owed, including the current one.
    pub windows_remaining: u32,
    /// ON time completed in the current window, excluding the running
    /// segment.
    pub served_in_window: SimDuration,
    /// Start of the running segment's contribution to the current window.
    pub on_since: Option<SimTime>,
    /// Physical start of the running ON instance.
    pub instance_start: Option<SimTime>,
    /// Arrival time of the activating request.
    pub arrival: SimTime,
}

/// Error returned when a command would violate the minDCD constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinDcdViolation {
    /// How long the running instance has been ON.
    pub instance_elapsed: SimDuration,
    /// The required minimum.
    pub required: SimDuration,
}

impl fmt::Display for MinDcdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instance has run {} of the required {}",
            self.instance_elapsed, self.required
        )
    }
}

impl std::error::Error for MinDcdViolation {}

/// Duty-cycle bookkeeping for one Type-2 device.
#[derive(Debug, Clone, PartialEq)]
pub struct DutyCycler {
    constraints: DutyCycleConstraints,
    state: State,
}

impl DutyCycler {
    /// Creates an inactive cycler.
    pub fn new(constraints: DutyCycleConstraints) -> Self {
        DutyCycler {
            constraints,
            state: State::Inactive,
        }
    }

    /// The constraints in force.
    pub fn constraints(&self) -> &DutyCycleConstraints {
        &self.constraints
    }

    /// Whether a user request is being served.
    pub fn is_active(&self) -> bool {
        matches!(self.state, State::Active { .. })
    }

    /// Whether the power element is currently ON.
    pub fn is_on(&self) -> bool {
        matches!(
            self.state,
            State::Active {
                on_since: Some(_),
                ..
            }
        )
    }

    /// Arrival time of the activating request, while active.
    pub fn arrival(&self) -> Option<SimTime> {
        match self.state {
            State::Active { arrival, .. } => Some(arrival),
            State::Inactive => None,
        }
    }

    /// Activity windows still owed, including the current one.
    pub fn windows_remaining(&self) -> u32 {
        match self.state {
            State::Active {
                windows_remaining, ..
            } => windows_remaining,
            State::Inactive => 0,
        }
    }

    /// Activates the device for `windows` maxDCP windows starting at `now`,
    /// or extends the obligation if already active.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero.
    pub fn activate(&mut self, now: SimTime, windows: u32) {
        assert!(windows > 0, "activation must request at least one window");
        match &mut self.state {
            State::Inactive => {
                self.state = State::Active {
                    window_start: now,
                    windows_remaining: windows,
                    served_in_window: SimDuration::ZERO,
                    on_since: None,
                    instance_start: None,
                    arrival: now,
                };
            }
            State::Active {
                windows_remaining, ..
            } => {
                *windows_remaining += windows;
            }
        }
    }

    /// Advances bookkeeping to `now`, closing any expired windows.
    ///
    /// Must be called with non-decreasing `now`. Returns what happened; the
    /// Device Interface turns the appliance OFF physically when
    /// `deactivated` is reported.
    pub fn advance(&mut self, now: SimTime) -> AdvanceOutcome {
        let mut outcome = AdvanceOutcome::default();
        loop {
            let State::Active {
                window_start,
                windows_remaining,
                served_in_window,
                on_since,
                instance_start,
                arrival,
            } = self.state.clone()
            else {
                return outcome;
            };
            let window_end = window_start + self.constraints.max_dcp;
            if now < window_end {
                return outcome;
            }
            // Close this window.
            let mut served = served_in_window;
            if let Some(s) = on_since {
                served += window_end - s;
            }
            outcome.windows_closed += 1;
            if served < self.constraints.min_dcd {
                outcome.deadline_misses += 1;
            }
            if windows_remaining <= 1 {
                outcome.deactivated = true;
                self.state = State::Inactive;
                return outcome;
            }
            self.state = State::Active {
                window_start: window_end,
                windows_remaining: windows_remaining - 1,
                served_in_window: SimDuration::ZERO,
                // A running segment continues into the new window.
                on_since: on_since.map(|_| window_end),
                instance_start,
                arrival,
            };
        }
    }

    /// Switches the element ON. No-op if already ON.
    ///
    /// # Panics
    ///
    /// Panics if the device is inactive — the schedule must never switch ON
    /// a device nobody asked for.
    pub fn set_on(&mut self, now: SimTime) {
        match &mut self.state {
            State::Inactive => panic!("cannot switch ON an inactive device"),
            State::Active {
                on_since,
                instance_start,
                ..
            } => {
                if on_since.is_none() {
                    *on_since = Some(now);
                    *instance_start = Some(now);
                }
            }
        }
    }

    /// Switches the element OFF, enforcing the minDCD instance constraint.
    ///
    /// No-op if already OFF.
    ///
    /// # Errors
    ///
    /// Returns [`MinDcdViolation`] (leaving the device ON) if the running
    /// instance has not yet lasted minDCD.
    pub fn set_off(&mut self, now: SimTime) -> Result<(), MinDcdViolation> {
        let State::Active {
            on_since,
            instance_start,
            served_in_window,
            ..
        } = &mut self.state
        else {
            return Ok(());
        };
        let (Some(since), Some(instance)) = (*on_since, *instance_start) else {
            return Ok(());
        };
        let instance_elapsed = now.saturating_since(instance);
        if instance_elapsed < self.constraints.min_dcd {
            return Err(MinDcdViolation {
                instance_elapsed,
                required: self.constraints.min_dcd,
            });
        }
        *served_in_window += now.saturating_since(since);
        *on_since = None;
        *instance_start = None;
        Ok(())
    }

    /// Switches the element OFF unconditionally (deactivation, failure
    /// injection). Returns whether the minDCD constraint was violated.
    pub fn force_off(&mut self, now: SimTime) -> bool {
        let State::Active {
            on_since,
            instance_start,
            served_in_window,
            ..
        } = &mut self.state
        else {
            return false;
        };
        let (Some(since), Some(instance)) = (*on_since, *instance_start) else {
            return false;
        };
        let violated = now.saturating_since(instance) < self.constraints.min_dcd;
        *served_in_window += now.saturating_since(since);
        *on_since = None;
        *instance_start = None;
        violated
    }

    /// Captures the activity state as plain data (constraints excluded —
    /// they come from the fleet spec on reconstruction).
    pub fn snapshot(&self) -> DutyCyclerSnapshot {
        DutyCyclerSnapshot {
            active: match &self.state {
                State::Inactive => None,
                State::Active {
                    window_start,
                    windows_remaining,
                    served_in_window,
                    on_since,
                    instance_start,
                    arrival,
                } => Some(ActiveSnapshot {
                    window_start: *window_start,
                    windows_remaining: *windows_remaining,
                    served_in_window: *served_in_window,
                    on_since: *on_since,
                    instance_start: *instance_start,
                    arrival: *arrival,
                }),
            },
        }
    }

    /// Restores the activity state from a [`DutyCycler::snapshot`].
    pub fn restore(&mut self, snapshot: &DutyCyclerSnapshot) {
        self.state = match &snapshot.active {
            None => State::Inactive,
            Some(a) => State::Active {
                window_start: a.window_start,
                windows_remaining: a.windows_remaining,
                served_in_window: a.served_in_window,
                on_since: a.on_since,
                instance_start: a.instance_start,
                arrival: a.arrival,
            },
        };
    }

    /// ON time credited to the current window as of `now`.
    pub fn served_in_window(&self, now: SimTime) -> SimDuration {
        match &self.state {
            State::Inactive => SimDuration::ZERO,
            State::Active {
                served_in_window,
                on_since,
                ..
            } => {
                let mut served = *served_in_window;
                if let Some(s) = on_since {
                    served += now.saturating_since(*s);
                }
                served
            }
        }
    }

    /// ON time still owed in the current window (zero once minDCD is met).
    pub fn owed(&self, now: SimTime) -> SimDuration {
        if !self.is_active() {
            return SimDuration::ZERO;
        }
        self.constraints
            .min_dcd
            .saturating_sub(self.served_in_window(now))
    }

    /// Deadline of the current window, while active.
    pub fn window_deadline(&self) -> Option<SimTime> {
        match self.state {
            State::Active { window_start, .. } => Some(window_start + self.constraints.max_dcp),
            State::Inactive => None,
        }
    }

    /// Signed slack in microseconds before the device *must* be ON to still
    /// meet its window obligation: `(deadline − now) − owed`.
    ///
    /// Negative laxity means the obligation can no longer be fully met.
    /// Returns `None` while inactive or once the obligation is met.
    pub fn laxity_micros(&self, now: SimTime) -> Option<i64> {
        let deadline = self.window_deadline()?;
        let owed = self.owed(now);
        if owed.is_zero() {
            return None;
        }
        let slack = deadline.as_micros() as i64 - now.as_micros() as i64;
        Some(slack - owed.as_micros() as i64)
    }

    /// Whether the device must be ON *now* to keep its obligation feasible.
    pub fn must_run(&self, now: SimTime) -> bool {
        matches!(self.laxity_micros(now), Some(l) if l <= 0)
    }

    /// Whether the running instance has lasted at least minDCD (and may be
    /// switched OFF without violation).
    pub fn instance_complete(&self, now: SimTime) -> bool {
        match &self.state {
            State::Active {
                instance_start: Some(instance),
                ..
            } => now.saturating_since(*instance) >= self.constraints.min_dcd,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN: SimDuration = SimDuration::from_mins(15);
    const MAX: SimDuration = SimDuration::from_mins(30);

    fn paper_cycler() -> DutyCycler {
        DutyCycler::new(DutyCycleConstraints::paper())
    }

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    #[test]
    fn constraints_validation() {
        assert!(DutyCycleConstraints::new(MIN, MAX).is_ok());
        assert_eq!(
            DutyCycleConstraints::new(SimDuration::ZERO, MAX),
            Err(ConstraintError::ZeroMinDcd)
        );
        assert!(matches!(
            DutyCycleConstraints::new(MAX, MIN),
            Err(ConstraintError::PeriodShorterThanDuration { .. })
        ));
        assert!((DutyCycleConstraints::paper().duty_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lifecycle_single_window() {
        let mut d = paper_cycler();
        assert!(!d.is_active());
        d.activate(t(0), 1);
        assert!(d.is_active() && !d.is_on());
        assert_eq!(d.owed(t(0)), MIN);
        assert_eq!(d.window_deadline(), Some(t(30)));

        d.set_on(t(5));
        assert!(d.is_on());
        assert_eq!(d.served_in_window(t(12)), SimDuration::from_mins(7));
        assert_eq!(d.owed(t(12)), SimDuration::from_mins(8));

        // minDCD complete at t=20.
        assert!(!d.instance_complete(t(19)));
        assert!(d.instance_complete(t(20)));
        d.set_off(t(20)).expect("instance complete");
        assert!(!d.is_on());
        assert_eq!(d.owed(t(20)), SimDuration::ZERO);

        // Window closes at t=30 with obligation met; device deactivates.
        let out = d.advance(t(31));
        assert_eq!(out.windows_closed, 1);
        assert_eq!(out.deadline_misses, 0);
        assert!(out.deactivated);
        assert!(!d.is_active());
    }

    #[test]
    fn early_off_rejected() {
        let mut d = paper_cycler();
        d.activate(t(0), 1);
        d.set_on(t(0));
        let err = d.set_off(t(10)).unwrap_err();
        assert_eq!(err.instance_elapsed, SimDuration::from_mins(10));
        assert_eq!(err.required, MIN);
        assert!(d.is_on(), "device must remain ON after rejected OFF");
        assert!(err.to_string().contains("required"));
    }

    #[test]
    fn force_off_reports_violation() {
        let mut d = paper_cycler();
        d.activate(t(0), 1);
        d.set_on(t(0));
        assert!(d.force_off(t(5)), "early force-off is a violation");
        assert!(!d.is_on());
        let mut d2 = paper_cycler();
        d2.activate(t(0), 1);
        d2.set_on(t(0));
        assert!(!d2.force_off(t(16)), "late force-off is clean");
    }

    #[test]
    fn deadline_miss_counted() {
        let mut d = paper_cycler();
        d.activate(t(0), 1);
        // Never switched ON: the window closes unmet.
        let out = d.advance(t(30));
        assert_eq!(out.deadline_misses, 1);
        assert!(out.deactivated);
    }

    #[test]
    fn multi_window_rollover() {
        let mut d = paper_cycler();
        d.activate(t(0), 2);
        d.set_on(t(0));
        d.set_off(t(15)).unwrap();
        let out = d.advance(t(30));
        assert_eq!(out.windows_closed, 1);
        assert_eq!(out.deadline_misses, 0);
        assert!(!out.deactivated);
        assert_eq!(d.windows_remaining(), 1);
        // New window: obligation resets.
        assert_eq!(d.owed(t(30)), MIN);
        assert_eq!(d.window_deadline(), Some(t(60)));
    }

    #[test]
    fn on_segment_crossing_window_boundary_splits() {
        let mut d = paper_cycler();
        d.activate(t(0), 2);
        // ON from t=20; window closes at t=30 with only 10 min served (miss),
        // but the running segment credits the next window from t=30.
        d.set_on(t(20));
        let out = d.advance(t(35));
        assert_eq!(out.windows_closed, 1);
        assert_eq!(out.deadline_misses, 1);
        assert!(d.is_on());
        assert_eq!(d.served_in_window(t(35)), SimDuration::from_mins(5));
        // Instance length is continuous: 20 minutes by t=40.
        assert!(d.instance_complete(t(40)));
    }

    #[test]
    fn laxity_math() {
        let mut d = paper_cycler();
        d.activate(t(0), 1);
        // At t=0: slack 30, owed 15 => laxity +15 min.
        assert_eq!(d.laxity_micros(t(0)), Some(15 * 60 * 1_000_000));
        // At t=15: laxity 0 => must run.
        assert_eq!(d.laxity_micros(t(15)), Some(0));
        assert!(d.must_run(t(15)));
        assert!(!d.must_run(t(14)));
        // Past the point of feasibility: negative.
        assert!(d.laxity_micros(t(20)).unwrap() < 0);
        // Once met, no laxity is reported.
        d.set_on(t(0));
        d.set_off(t(15)).unwrap();
        assert_eq!(d.laxity_micros(t(16)), None);
        assert!(!d.must_run(t(16)));
    }

    #[test]
    fn activation_extends_existing() {
        let mut d = paper_cycler();
        d.activate(t(0), 1);
        d.activate(t(5), 2);
        assert_eq!(d.windows_remaining(), 3);
        assert_eq!(d.arrival(), Some(t(0)), "original arrival kept");
    }

    #[test]
    #[should_panic(expected = "inactive device")]
    fn on_while_inactive_panics() {
        let mut d = paper_cycler();
        d.set_on(t(0));
    }

    #[test]
    fn off_while_inactive_or_off_is_noop() {
        let mut d = paper_cycler();
        assert!(d.set_off(t(0)).is_ok());
        d.activate(t(0), 1);
        assert!(d.set_off(t(1)).is_ok());
    }

    #[test]
    fn snapshot_round_trips_mid_window() {
        let mut d = paper_cycler();
        d.activate(t(0), 2);
        d.set_on(t(5));
        d.advance(t(31)); // roll into window 2 with the segment running
        let snap = d.snapshot();
        let mut restored = paper_cycler();
        restored.restore(&snap);
        assert_eq!(restored, d);
        // The restored cycler continues identically.
        assert_eq!(restored.owed(t(40)), d.owed(t(40)));
        assert_eq!(restored.laxity_micros(t(40)), d.laxity_micros(t(40)));
        // An inactive snapshot round-trips too.
        let idle = paper_cycler();
        let mut was_active = paper_cycler();
        was_active.activate(t(0), 1);
        was_active.restore(&idle.snapshot());
        assert!(!was_active.is_active());
    }

    #[test]
    fn advance_multiple_windows_at_once() {
        let mut d = paper_cycler();
        d.activate(t(0), 3);
        // Jump 95 minutes: all three windows close (all missed).
        let out = d.advance(t(95));
        assert_eq!(out.windows_closed, 3);
        assert_eq!(out.deadline_misses, 3);
        assert!(out.deactivated);
    }

    #[test]
    fn served_caps_at_window() {
        let mut d = paper_cycler();
        d.activate(t(0), 1);
        d.set_on(t(0));
        // Still on at t=25: served 25 min, owed 0.
        assert_eq!(d.served_in_window(t(25)), SimDuration::from_mins(25));
        assert_eq!(d.owed(t(25)), SimDuration::ZERO);
    }
}
