//! # han-device — appliances, duty cycles and Device Interfaces
//!
//! Models the electrical side of the paper's HAN:
//!
//! * [`power`] — [`power::Watts`] / [`power::WattHours`] units;
//! * [`appliance`] — the Type-1 / Type-2 appliance catalogue
//!   ([`appliance::ApplianceKind`], [`appliance::Appliance`]);
//! * [`duty_cycle`] — the minDCD/maxDCP constraint pair and the
//!   [`duty_cycle::DutyCycler`] bookkeeping state machine (windows, owed
//!   time, laxity);
//! * [`thermal`] — first-order RC room model driving realistic duty cycles;
//! * [`request`] — user requests;
//! * [`status`] — the 13-byte status record DIs publish each round;
//! * [`interface`] — [`interface::DeviceInterface`]: appliance + cycler +
//!   safety interlock against schedule commands that violate minDCD.
//!
//! # Examples
//!
//! A 1 kW paper device serving one request:
//!
//! ```
//! use han_device::appliance::DeviceId;
//! use han_device::interface::DeviceInterface;
//! use han_device::request::Request;
//! use han_sim::time::SimTime;
//!
//! let mut di = DeviceInterface::paper(DeviceId(0));
//! di.handle_request(SimTime::ZERO, &Request::new(DeviceId(0), SimTime::ZERO))?;
//! di.command(SimTime::ZERO, true);
//! assert_eq!(di.power().as_kw(), 1.0);
//! # Ok::<(), han_device::interface::RequestError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appliance;
pub mod duty_cycle;
pub mod interface;
pub mod power;
pub mod request;
pub mod status;
pub mod thermal;

pub use appliance::{Appliance, ApplianceKind, DeviceClass, DeviceId};
pub use duty_cycle::{DutyCycleConstraints, DutyCycler};
pub use interface::DeviceInterface;
pub use power::{WattHours, Watts};
pub use request::Request;
pub use status::StatusRecord;
