//! User requests for appliance execution.
//!
//! A request asks one Type-2 device to run for a number of maxDCP windows
//! (the paper's evaluation uses one window per request: each request obliges
//! the device to one minDCD instance within the next maxDCP). Requests are
//! what the Communication Plane disseminates so *every* Device Interface
//! learns about new work immediately.

use crate::appliance::DeviceId;
use han_sim::time::SimTime;
use std::fmt;

/// A user request to run a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The target device.
    pub device: DeviceId,
    /// When the user issued the request.
    pub arrival: SimTime,
    /// How many maxDCP windows of activity are requested (≥ 1).
    pub windows: u32,
}

impl Request {
    /// Creates a request for one window of activity (the paper's shape).
    pub fn new(device: DeviceId, arrival: SimTime) -> Self {
        Request {
            device,
            arrival,
            windows: 1,
        }
    }

    /// Creates a request for several consecutive windows.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero.
    pub fn with_windows(device: DeviceId, arrival: SimTime, windows: u32) -> Self {
        assert!(windows > 0, "request must cover at least one window");
        Request {
            device,
            arrival,
            windows,
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "request[{} at {} x{}]",
            self.device, self.arrival, self.windows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_window_default() {
        let r = Request::new(DeviceId(3), SimTime::from_mins(5));
        assert_eq!(r.windows, 1);
        assert_eq!(r.device, DeviceId(3));
    }

    #[test]
    fn multi_window() {
        let r = Request::with_windows(DeviceId(0), SimTime::ZERO, 4);
        assert_eq!(r.windows, 4);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_panics() {
        Request::with_windows(DeviceId(0), SimTime::ZERO, 0);
    }

    #[test]
    fn display_mentions_device() {
        let r = Request::new(DeviceId(7), SimTime::from_secs(2));
        assert!(r.to_string().contains("d7"));
    }
}
