//! Property-based tests of the synchronous-transmission stack.

use han_net::generators;
use han_net::NodeId;
use han_radio::channel::ChannelModel;
use han_sim::rng::DetRng;
use han_st::glossy;
use han_st::item::{Item, ItemStore};
use han_st::minicast::run_round;
use han_st::StConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flood_reaches_exactly_the_connected_component(
        n in 2usize..12,
        spacing in 5.0f64..25.0,
        seed in any::<u64>()
    ) {
        // A line with unit-disk range 15: connected prefix iff spacing <= 15.
        let topo = generators::line(n, spacing, ChannelModel::UnitDisk { range_m: 15.0 });
        let rssi = topo.rssi_matrix();
        let mut rng = DetRng::new(seed);
        let out = glossy::flood(&rssi, NodeId(0), 1, 60, &StConfig::default(), &mut rng);
        let connected = spacing <= 15.0;
        if connected {
            // With the default redundancy a clean line always floods fully
            // as long as it fits the slot budget (hops <= flood_slots).
            if n <= StConfig::default().flood_slots {
                prop_assert!(out.is_complete(), "coverage {:?}", out.received);
            }
        } else {
            prop_assert!(out.received[0]);
            for i in 1..n {
                prop_assert!(!out.received[i], "frame crossed a {spacing} m gap");
            }
        }
    }

    #[test]
    fn flood_tx_budget_always_respected(
        rows in 2usize..5,
        cols in 2usize..5,
        seed in any::<u64>()
    ) {
        let topo = generators::grid(rows, cols, 10.0, ChannelModel::UnitDisk { range_m: 15.0 });
        let rssi = topo.rssi_matrix();
        let cfg = StConfig::default();
        let mut rng = DetRng::new(seed);
        let out = glossy::flood(&rssi, NodeId(0), 1, 60, &cfg, &mut rng);
        for (i, &tx) in out.tx_count.iter().enumerate() {
            prop_assert!(tx <= u32::from(cfg.n_tx), "node {i} over budget");
            prop_assert_eq!(
                out.listen_slots[i] + out.tx_count[i],
                cfg.flood_slots as u32
            );
        }
    }

    #[test]
    fn stores_only_grow_and_never_regress_versions(
        rounds in 1u64..4,
        seed in any::<u64>()
    ) {
        let topo = generators::grid(3, 3, 10.0, ChannelModel::UnitDisk { range_m: 15.0 });
        let rssi = topo.rssi_matrix();
        let n = topo.len();
        let mut stores = vec![ItemStore::new(); n];
        for (i, store) in stores.iter_mut().enumerate() {
            store.merge(&Item::new(NodeId(i as u32), 1, vec![i as u8; 8]));
        }
        let mut rng = DetRng::new(seed);
        let mut prev_counts: Vec<usize> = stores.iter().map(ItemStore::len).collect();
        let mut prev_seqs: Vec<Vec<Option<u32>>> = vec![vec![None; n]; n];
        for r in 0..rounds {
            run_round(&rssi, &mut stores, NodeId(0), &StConfig::default(), r, &mut rng);
            for (node, store) in stores.iter().enumerate() {
                prop_assert!(store.len() >= prev_counts[node], "store shrank");
                prev_counts[node] = store.len();
                for origin in 0..n {
                    let seq = store.seq_of(NodeId(origin as u32));
                    if let (Some(new), Some(Some(old))) =
                        (seq, prev_seqs[node].get(origin))
                    {
                        prop_assert!(new >= *old, "version regressed");
                    }
                    prev_seqs[node][origin] = seq;
                }
            }
        }
    }

    #[test]
    fn round_is_deterministic_in_seed(seed in any::<u64>()) {
        let topo = generators::grid(3, 3, 10.0, ChannelModel::indoor_office(3));
        let rssi = topo.rssi_matrix();
        let n = topo.len();
        let run = || {
            let mut stores = vec![ItemStore::new(); n];
            for (i, store) in stores.iter_mut().enumerate() {
                store.merge(&Item::new(NodeId(i as u32), 1, vec![i as u8; 8]));
            }
            let mut rng = DetRng::new(seed);
            let report = run_round(&rssi, &mut stores, NodeId(0), &StConfig::default(), 0, &mut rng);
            (report.coverage.clone(), report.tx_count.clone())
        };
        prop_assert_eq!(run(), run());
    }
}
