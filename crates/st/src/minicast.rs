//! MiniCast: many-to-many (all-to-all) data sharing over synchronous floods.
//!
//! MiniCast (Saha & Chakraborty, DCOSS 2017) lets every node share a small
//! data item with every other node once per round, by combining TDMA with
//! Glossy floods and **aggregation**: each flood carries not just the
//! initiator's item but a packet-full of items the initiator has already
//! collected. Items lost in their own flood phase are therefore carried
//! again by later initiators — redundancy that pushes per-round all-to-all
//! reliability very close to one even on lossy multi-hop networks.
//!
//! One round, as implemented here (defaults mirror the paper: 2 s period):
//!
//! 1. **Sync phase** — a short beacon flood from the round initiator aligns
//!    everyone (phase 0).
//! 2. **Data phases** — one Glossy flood per node, in a TDMA order rotated
//!    every round. The phase initiator aggregates its own freshest item plus
//!    as many others as fit in one 802.15.4 frame, chosen round-robin.
//! 3. Every receiver merges the aggregate into its [`ItemStore`].
//!
//! [`run_round`] executes one full round against the topology's RSSI matrix
//! and reports coverage, reliability and radio cost.

use crate::config::StConfig;
use crate::glossy::{self, FloodOutcome};
use crate::item::{Item, ItemStore};
use han_net::NodeId;
use han_radio::phy;
use han_radio::units::Dbm;
use han_sim::rng::DetRng;
use han_sim::time::SimDuration;

/// Aggregate frame overhead besides items: round counter (4 B), phase (1 B),
/// initiator (1 B), item count (1 B).
pub const AGGREGATE_HEADER_BYTES: usize = 7;

/// Report of one MiniCast round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round counter this report describes.
    pub round_index: u64,
    /// Number of distinct origins each node knows after the round.
    pub coverage: Vec<usize>,
    /// Number of origins that published (the coverage target).
    pub published: usize,
    /// Mean fraction of published origins delivered per node.
    pub reliability: f64,
    /// Whether every node received every published origin's item.
    pub all_to_all: bool,
    /// Whether each node received the sync beacon this round.
    pub synced: Vec<bool>,
    /// Transmissions per node across all phases.
    pub tx_count: Vec<u32>,
    /// Listening slots per node across all phases.
    pub listen_slots: Vec<u32>,
    /// Radio-on time per node this round (tx air time + listen slots).
    pub radio_on: Vec<SimDuration>,
    /// Number of flood phases executed (sync + data).
    pub phases: usize,
}

impl RoundReport {
    /// Worst per-node coverage fraction this round.
    pub fn worst_node_reliability(&self) -> f64 {
        if self.published == 0 {
            return 1.0;
        }
        self.coverage
            .iter()
            .map(|&c| c as f64 / self.published as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total radio-on time across all nodes.
    pub fn total_radio_on(&self) -> SimDuration {
        self.radio_on
            .iter()
            .fold(SimDuration::ZERO, |acc, &d| acc + d)
    }
}

/// Reusable working memory for [`run_round_with`].
///
/// The aggregate/origins buffers are rebuilt once per *phase* (n + 1
/// times per round), so reusing them is the real win; the per-node tally
/// vectors are handed off into the returned [`RoundReport`] (whose
/// per-node vectors are the function's product and necessarily fresh)
/// and regrown on the next reset. Item clones into the aggregate are
/// cheap: payloads are refcounted [`Bytes`], so "cloning" an item copies
/// a pointer, never the payload.
///
/// [`Bytes`]: bytes::Bytes
#[derive(Debug, Default, Clone)]
pub struct RoundScratch {
    aggregate: Vec<Item>,
    origins: Vec<NodeId>,
    tx_count: Vec<u32>,
    listen_slots: Vec<u32>,
    tx_air: Vec<SimDuration>,
    /// Sync-beacon outcome of the round in flight (set by [`sync_phase`]).
    synced: Vec<bool>,
    /// Flood phases executed so far in the round in flight.
    phases: usize,
}

impl RoundScratch {
    fn reset(&mut self, n: usize) {
        self.aggregate.clear();
        self.origins.clear();
        self.tx_count.clear();
        self.tx_count.resize(n, 0);
        self.listen_slots.clear();
        self.listen_slots.resize(n, 0);
        self.tx_air.clear();
        self.tx_air.resize(n, SimDuration::ZERO);
        self.synced.clear();
        self.phases = 0;
    }
}

/// Folds one flood's radio tallies into the round-in-flight scratch.
fn absorb(out: &FloodOutcome, scratch: &mut RoundScratch, frame_payload: usize) {
    let air = phy::air_time(frame_payload).expect("aggregate exceeds frame");
    for i in 0..out.tx_count.len() {
        scratch.tx_count[i] += out.tx_count[i];
        scratch.listen_slots[i] += out.listen_slots[i];
        scratch.tx_air[i] += air * u64::from(out.tx_count[i]);
    }
}

/// Builds the aggregate for a phase initiator: its own item first, then
/// other stored items chosen round-robin by `(origin + rotation)`.
pub(crate) fn build_aggregate(
    store: &ItemStore,
    own: NodeId,
    rotation: u64,
    max_payload: usize,
) -> Vec<Item> {
    let mut out = Vec::new();
    let mut origins = Vec::new();
    build_aggregate_into(store, own, rotation, max_payload, &mut out, &mut origins);
    out
}

/// [`build_aggregate`] into caller-owned buffers (cleared first).
pub(crate) fn build_aggregate_into(
    store: &ItemStore,
    own: NodeId,
    rotation: u64,
    max_payload: usize,
    out: &mut Vec<Item>,
    origins: &mut Vec<NodeId>,
) {
    out.clear();
    let mut budget = max_payload.saturating_sub(AGGREGATE_HEADER_BYTES);
    if let Some(own_item) = store.get(own) {
        if own_item.wire_bytes() <= budget {
            budget -= own_item.wire_bytes();
            out.push(own_item.clone());
        }
    }
    origins.clear();
    origins.extend(store.iter().map(|item| item.origin));
    if origins.is_empty() {
        return;
    }
    let start = (rotation as usize) % origins.len();
    for k in 0..origins.len() {
        let origin = origins[(start + k) % origins.len()];
        if origin == own {
            continue;
        }
        let item = store.get(origin).expect("origin listed but missing");
        if item.wire_bytes() <= budget {
            budget -= item.wire_bytes();
            out.push(item.clone());
        }
    }
}

/// Content identity of an aggregate (order-sensitive, like real bits on air).
fn aggregate_content_key(items: &[Item], round_index: u64, phase: usize) -> u64 {
    let mut h: u64 = 0x100_0000_01B3 ^ round_index.wrapping_mul(31) ^ (phase as u64);
    for item in items {
        h ^= item.content_key();
        h = h.rotate_left(13).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    h
}

/// On-air application payload size of an aggregate.
fn aggregate_payload_bytes(items: &[Item]) -> usize {
    AGGREGATE_HEADER_BYTES + items.iter().map(Item::wire_bytes).sum::<usize>()
}

/// Executes one MiniCast round.
///
/// `stores[i]` is node `i`'s item store; callers publish a node's own item
/// by merging it into its store before the round. `initiator` floods the
/// sync beacon. The TDMA order of data phases rotates with `round_index`.
///
/// # Panics
///
/// Panics if `stores.len()` does not match the RSSI matrix dimension, or if
/// `config` fails validation.
pub fn run_round(
    rssi: &[Vec<Dbm>],
    stores: &mut [ItemStore],
    initiator: NodeId,
    config: &StConfig,
    round_index: u64,
    rng: &mut DetRng,
) -> RoundReport {
    let mut scratch = RoundScratch::default();
    run_round_with(
        rssi,
        stores,
        initiator,
        config,
        round_index,
        rng,
        &mut scratch,
    )
}

/// [`run_round`] with caller-owned [`RoundScratch`], so a long-running
/// communication plane reuses its working buffers round after round
/// instead of reallocating them.
///
/// Internally one round is the phase sequence `sync_phase` → `n ×
/// data_phase` → `finish_round_report`; callers that need the flood
/// steps individually (the event-driven communication plane models each
/// as its own typed event) drive those functions directly and get
/// bit-identical behavior, because this *is* that sequence.
#[allow(clippy::too_many_arguments)]
pub fn run_round_with(
    rssi: &[Vec<Dbm>],
    stores: &mut [ItemStore],
    initiator: NodeId,
    config: &StConfig,
    round_index: u64,
    rng: &mut DetRng,
    scratch: &mut RoundScratch,
) -> RoundReport {
    let n = rssi.len();
    sync_phase(rssi, initiator, config, round_index, rng, scratch);
    for k in 0..n {
        data_phase(rssi, stores, config, round_index, k, rng, scratch);
    }
    finish_round_report(stores, config, round_index, scratch)
}

/// Phase 0 of one MiniCast round: the sync-beacon flood from `initiator`.
///
/// Resets `scratch` for a fresh round and records which nodes heard the
/// beacon (consumed by [`finish_round_report`]). Must be called exactly
/// once per round, before any [`data_phase`].
///
/// # Panics
///
/// Panics if `config` fails validation.
pub fn sync_phase(
    rssi: &[Vec<Dbm>],
    initiator: NodeId,
    config: &StConfig,
    round_index: u64,
    rng: &mut DetRng,
    scratch: &mut RoundScratch,
) {
    config.validate().expect("invalid ST configuration");
    scratch.reset(rssi.len());
    let beacon_payload = 8;
    let sync_out = glossy::flood(
        rssi,
        initiator,
        0x5159_0000 ^ round_index,
        phy::frame_bytes(beacon_payload).expect("beacon fits"),
        config,
        rng,
    );
    absorb(&sync_out, scratch, beacon_payload);
    scratch.synced.extend_from_slice(&sync_out.received);
    scratch.phases = 1;
}

/// Data phase `k` (0-based) of one MiniCast round: the Glossy flood
/// initiated by node `(round_index + k) mod n` carrying its aggregate,
/// merged into every receiver's store. Call with `k` in `0..n`, in
/// order, after [`sync_phase`].
///
/// # Panics
///
/// Panics if `stores.len()` does not match the RSSI matrix dimension.
pub fn data_phase(
    rssi: &[Vec<Dbm>],
    stores: &mut [ItemStore],
    config: &StConfig,
    round_index: u64,
    k: usize,
    rng: &mut DetRng,
    scratch: &mut RoundScratch,
) {
    let n = rssi.len();
    assert_eq!(stores.len(), n, "one item store per node required");
    let origin = NodeId(((round_index as usize + k) % n) as u32);
    build_aggregate_into(
        &stores[origin.index()],
        origin,
        round_index.wrapping_add(k as u64),
        config.max_packet_payload,
        &mut scratch.aggregate,
        &mut scratch.origins,
    );
    scratch.phases += 1;
    if scratch.aggregate.is_empty() {
        // Nothing to send: the phase stays silent, everyone listens.
        for (i, ls) in scratch.listen_slots.iter_mut().enumerate() {
            if i != origin.index() {
                *ls += config.flood_slots as u32;
            }
        }
        return;
    }
    let payload = aggregate_payload_bytes(&scratch.aggregate);
    let content = aggregate_content_key(&scratch.aggregate, round_index, k);
    let out = glossy::flood(
        rssi,
        origin,
        content,
        phy::frame_bytes(payload).expect("aggregate fits"),
        config,
        rng,
    );
    absorb(&out, scratch, payload);
    for (node, store) in stores.iter_mut().enumerate() {
        if out.received[node] && node != origin.index() {
            store.merge_all(scratch.aggregate.iter());
        }
    }
}

/// Assembles the [`RoundReport`] after [`sync_phase`] and all data
/// phases of one round have run, consuming the tallies in `scratch`.
pub fn finish_round_report(
    stores: &[ItemStore],
    config: &StConfig,
    round_index: u64,
    scratch: &mut RoundScratch,
) -> RoundReport {
    let n = stores.len();
    // Coverage and reliability against the set of origins that published.
    let published = (0..n)
        .filter(|&i| stores[i].get(NodeId(i as u32)).is_some())
        .count();
    let coverage: Vec<usize> = stores.iter().map(ItemStore::len).collect();
    let reliability = if published == 0 {
        1.0
    } else {
        coverage
            .iter()
            .map(|&c| c.min(published) as f64 / published as f64)
            .sum::<f64>()
            / n as f64
    };
    let all_to_all = coverage.iter().all(|&c| c >= published);

    let radio_on: Vec<SimDuration> = (0..n)
        .map(|i| scratch.tx_air[i] + config.slot_len * u64::from(scratch.listen_slots[i]))
        .collect();

    RoundReport {
        round_index,
        coverage,
        published,
        reliability,
        all_to_all,
        synced: std::mem::take(&mut scratch.synced),
        tx_count: std::mem::take(&mut scratch.tx_count),
        listen_slots: std::mem::take(&mut scratch.listen_slots),
        radio_on,
        phases: scratch.phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_net::generators;
    use han_radio::channel::ChannelModel;

    fn disk(range: f64) -> ChannelModel {
        ChannelModel::UnitDisk { range_m: range }
    }

    fn publish_all(stores: &mut [ItemStore], seq: u32) {
        for (i, store) in stores.iter_mut().enumerate() {
            let payload = vec![i as u8, seq as u8, 0xAB, 0xCD, 1, 2, 3, 4];
            store.merge(&Item::new(NodeId(i as u32), seq, payload));
        }
    }

    #[test]
    fn single_round_all_to_all_on_clean_grid() {
        let topo = generators::grid(3, 3, 10.0, disk(15.0));
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 9];
        publish_all(&mut stores, 1);
        let mut rng = DetRng::new(1);
        let report = run_round(
            &rssi,
            &mut stores,
            NodeId(0),
            &StConfig::default(),
            0,
            &mut rng,
        );
        assert!(report.all_to_all, "coverage={:?}", report.coverage);
        assert_eq!(report.published, 9);
        assert!((report.reliability - 1.0).abs() < 1e-12);
        assert_eq!(report.phases, 10);
    }

    #[test]
    fn flocklab_round_reaches_all_nodes() {
        let topo = han_net::flocklab::flocklab26_deterministic();
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 26];
        publish_all(&mut stores, 1);
        let mut rng = DetRng::new(7);
        let report = run_round(
            &rssi,
            &mut stores,
            NodeId(0),
            &StConfig::default(),
            0,
            &mut rng,
        );
        assert!(
            report.reliability > 0.95,
            "reliability {} too low",
            report.reliability
        );
        assert!(report.worst_node_reliability() > 0.8);
    }

    #[test]
    fn items_spread_even_without_own_flood_success() {
        // Aggregation redundancy: run two rounds; by the second round every
        // store should be complete even under heavy desync in round one.
        let topo = han_net::flocklab::flocklab26_deterministic();
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 26];
        publish_all(&mut stores, 1);
        let noisy = StConfig {
            desync_probability: 0.05,
            ..StConfig::default()
        };
        let mut rng = DetRng::new(3);
        run_round(&rssi, &mut stores, NodeId(0), &noisy, 0, &mut rng);
        let second = run_round(&rssi, &mut stores, NodeId(0), &noisy, 1, &mut rng);
        assert!(
            second.reliability > 0.99,
            "two rounds should converge, got {}",
            second.reliability
        );
    }

    #[test]
    fn empty_stores_publish_nothing() {
        let topo = generators::line(3, 10.0, disk(15.0));
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 3];
        let mut rng = DetRng::new(1);
        let report = run_round(
            &rssi,
            &mut stores,
            NodeId(0),
            &StConfig::default(),
            0,
            &mut rng,
        );
        assert_eq!(report.published, 0);
        assert!(report.all_to_all);
        assert!((report.reliability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_respects_frame_budget() {
        let mut store = ItemStore::new();
        for i in 0..40 {
            store.merge(&Item::new(NodeId(i), 1, vec![0u8; 8]));
        }
        let items = build_aggregate(&store, NodeId(0), 0, 120);
        let payload = aggregate_payload_bytes(&items);
        assert!(payload <= 120, "payload {payload} over budget");
        // 120 - 7 header = 113; each item is 12 B => 9 items.
        assert_eq!(items.len(), 9);
        assert_eq!(items[0].origin, NodeId(0), "own item leads the aggregate");
    }

    #[test]
    fn aggregate_rotation_varies_selection() {
        let mut store = ItemStore::new();
        for i in 0..40 {
            store.merge(&Item::new(NodeId(i), 1, vec![0u8; 8]));
        }
        let a: Vec<_> = build_aggregate(&store, NodeId(0), 0, 120)
            .iter()
            .map(|i| i.origin)
            .collect();
        let b: Vec<_> = build_aggregate(&store, NodeId(0), 17, 120)
            .iter()
            .map(|i| i.origin)
            .collect();
        assert_ne!(a, b, "rotation must vary carried items");
    }

    #[test]
    fn partitioned_network_caps_reliability() {
        // Two 2-node islands: items cannot cross the gap.
        let topo = generators::line(4, 30.0, disk(35.0));
        // spacing 30 m, range 35 m: 0-1, 1-2, 2-3 connected... use a real gap:
        let topo2 = han_net::Topology::new(
            vec![
                han_net::Position::new(0.0, 0.0),
                han_net::Position::new(10.0, 0.0),
                han_net::Position::new(500.0, 0.0),
                han_net::Position::new(510.0, 0.0),
            ],
            disk(15.0),
            han_radio::units::Dbm(0.0),
        );
        drop(topo);
        let rssi = topo2.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 4];
        publish_all(&mut stores, 1);
        let mut rng = DetRng::new(2);
        let report = run_round(
            &rssi,
            &mut stores,
            NodeId(0),
            &StConfig::default(),
            0,
            &mut rng,
        );
        assert!(!report.all_to_all);
        // Each node can know at most its island: 2 of 4 published.
        assert!(report.coverage.iter().all(|&c| c == 2));
        assert!((report.reliability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn radio_on_time_fits_round_period() {
        let topo = han_net::flocklab::flocklab26_deterministic();
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 26];
        publish_all(&mut stores, 1);
        let mut rng = DetRng::new(4);
        let cfg = StConfig::default();
        let report = run_round(&rssi, &mut stores, NodeId(0), &cfg, 0, &mut rng);
        for (i, &on) in report.radio_on.iter().enumerate() {
            assert!(
                on < cfg.round_period,
                "node {i} radio-on {on} exceeds the round period"
            );
        }
    }

    #[test]
    fn newer_items_replace_older_across_rounds() {
        let topo = generators::grid(2, 2, 10.0, disk(20.0));
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 4];
        publish_all(&mut stores, 1);
        let mut rng = DetRng::new(5);
        run_round(
            &rssi,
            &mut stores,
            NodeId(0),
            &StConfig::default(),
            0,
            &mut rng,
        );
        // Node 2 publishes seq 2; everyone should adopt it next round.
        stores[2].merge(&Item::new(NodeId(2), 2, vec![9u8; 8]));
        run_round(
            &rssi,
            &mut stores,
            NodeId(0),
            &StConfig::default(),
            1,
            &mut rng,
        );
        for (i, store) in stores.iter().enumerate() {
            assert_eq!(store.seq_of(NodeId(2)), Some(2), "node {i} kept stale item");
        }
    }
}
