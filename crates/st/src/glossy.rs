//! Glossy-style synchronous flooding.
//!
//! Glossy (Ferrari et al., IPSN 2011) floods one frame through a multi-hop
//! network in a handful of slots: the initiator transmits, every receiver
//! retransmits the *identical* frame in the next slot, and concurrent
//! retransmissions survive thanks to constructive interference and the
//! capture effect. Each node transmits at most `n_tx` times.
//!
//! [`flood`] executes one flood slot-by-slot against a precomputed RSSI
//! matrix and returns who received the frame, when, and at what radio cost.
//! It is the primitive under both the sync beacon and every MiniCast data
//! phase.

use crate::config::StConfig;
use han_net::NodeId;
use han_radio::capture::{resolve_slot, IncomingSignal, SlotOutcome};
use han_radio::units::Dbm;
use han_sim::rng::DetRng;
use han_sim::time::SimDuration;

/// Result of one flood.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodOutcome {
    /// Whether each node holds the frame after the flood (initiator: true).
    pub received: Vec<bool>,
    /// Slot index of first reception per node (`None` for the initiator and
    /// for nodes that never received).
    pub first_rx_slot: Vec<Option<usize>>,
    /// Number of transmissions each node made.
    pub tx_count: Vec<u32>,
    /// Number of slots each node spent listening.
    pub listen_slots: Vec<u32>,
    /// Slots actually elapsed (the configured flood length).
    pub slots_used: usize,
}

impl FloodOutcome {
    /// Fraction of nodes (including the initiator) holding the frame.
    pub fn coverage(&self) -> f64 {
        let n = self.received.len();
        if n == 0 {
            return 0.0;
        }
        self.received.iter().filter(|&&r| r).count() as f64 / n as f64
    }

    /// Whether every node received the frame.
    pub fn is_complete(&self) -> bool {
        self.received.iter().all(|&r| r)
    }
}

/// Draws a transmit-timing offset for one transmitter in one slot.
fn draw_offset(cfg: &StConfig, rng: &mut DetRng) -> SimDuration {
    if rng.gen_bool(cfg.desync_probability) {
        // A late timer interrupt: several to tens of microseconds off,
        // outside the constructive-interference window.
        SimDuration::from_micros(rng.gen_range_u64(45) + 5)
    } else {
        let jitter_ns = rng.gen_normal(0.0, cfg.tx_jitter_ns as f64).abs();
        SimDuration::from_micros((jitter_ns / 1000.0).round() as u64)
    }
}

/// Executes one synchronous flood of an identical frame from `initiator`.
///
/// `rssi` is the `matrix[from][to]` link-budget table from
/// [`han_net::Topology::rssi_matrix`]; `content_id` identifies the frame
/// content for the capture model; `frame_bytes` is the on-air frame size.
///
/// # Panics
///
/// Panics if `initiator` is out of range or `rssi` is not square.
pub fn flood(
    rssi: &[Vec<Dbm>],
    initiator: NodeId,
    content_id: u64,
    frame_bytes: usize,
    cfg: &StConfig,
    rng: &mut DetRng,
) -> FloodOutcome {
    let n = rssi.len();
    assert!(initiator.index() < n, "initiator out of range");
    assert!(
        rssi.iter().all(|row| row.len() == n),
        "rssi matrix not square"
    );

    let mut received = vec![false; n];
    let mut first_rx_slot = vec![None; n];
    let mut tx_count = vec![0u32; n];
    let mut listen_slots = vec![0u32; n];
    // Slot in which each node will next transmit, if any.
    let mut tx_at: Vec<Option<usize>> = vec![None; n];

    received[initiator.index()] = true;
    tx_at[initiator.index()] = Some(0);

    for slot in 0..cfg.flood_slots {
        let transmitters: Vec<usize> = (0..n)
            .filter(|&i| tx_at[i] == Some(slot) && tx_count[i] < u32::from(cfg.n_tx))
            .collect();

        // Offsets are drawn once per transmitter per slot, shared by all
        // receivers (the transmitter is early or late for everyone).
        let offsets: Vec<SimDuration> =
            transmitters.iter().map(|_| draw_offset(cfg, rng)).collect();

        let mut newly_received: Vec<usize> = Vec::new();
        for listener in 0..n {
            if transmitters.contains(&listener) {
                continue;
            }
            listen_slots[listener] += 1;
            if transmitters.is_empty() {
                continue;
            }
            let signals: Vec<IncomingSignal> = transmitters
                .iter()
                .zip(&offsets)
                .map(|(&tx, &offset)| IncomingSignal {
                    tx_index: tx,
                    rssi: rssi[tx][listener],
                    offset,
                    content_id,
                })
                .collect();
            if let SlotOutcome::Received { .. } =
                resolve_slot(&signals, &cfg.capture, frame_bytes, rng)
            {
                if !received[listener] {
                    received[listener] = true;
                    first_rx_slot[listener] = Some(slot);
                }
                newly_received.push(listener);
            }
        }

        // Post-slot bookkeeping: transmitters consumed a transmission and,
        // per Glossy, the initiator re-arms two slots later while relays
        // re-arm on every reception.
        for &tx in &transmitters {
            tx_count[tx] += 1;
            tx_at[tx] = if tx == initiator.index() && tx_count[tx] < u32::from(cfg.n_tx) {
                Some(slot + 2)
            } else {
                None
            };
        }
        for &node in &newly_received {
            if tx_count[node] < u32::from(cfg.n_tx) {
                tx_at[node] = Some(slot + 1);
            }
        }
    }

    FloodOutcome {
        received,
        first_rx_slot,
        tx_count,
        listen_slots,
        slots_used: cfg.flood_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_net::generators;
    use han_radio::channel::ChannelModel;

    fn disk(range: f64) -> ChannelModel {
        ChannelModel::UnitDisk { range_m: range }
    }

    fn cfg() -> StConfig {
        StConfig::default()
    }

    #[test]
    fn flood_covers_connected_line() {
        let topo = generators::line(5, 10.0, disk(15.0));
        let rssi = topo.rssi_matrix();
        let mut rng = DetRng::new(1);
        let out = flood(&rssi, NodeId(0), 42, 60, &cfg(), &mut rng);
        assert!(out.is_complete(), "flood failed: {:?}", out.received);
        // Hop latency: node k first receives in slot >= k-1.
        assert_eq!(out.first_rx_slot[1], Some(0));
        assert!(out.first_rx_slot[4].unwrap() >= 3);
    }

    #[test]
    fn flood_respects_partition() {
        let topo = generators::line(4, 30.0, disk(15.0));
        let rssi = topo.rssi_matrix();
        let mut rng = DetRng::new(1);
        let out = flood(&rssi, NodeId(0), 42, 60, &cfg(), &mut rng);
        assert!(out.received[0]);
        assert!(!out.received[1] && !out.received[2] && !out.received[3]);
        assert!((out.coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tx_budget_respected() {
        let topo = generators::grid(4, 4, 10.0, disk(15.0));
        let rssi = topo.rssi_matrix();
        let mut rng = DetRng::new(2);
        let c = cfg();
        let out = flood(&rssi, NodeId(5), 7, 60, &c, &mut rng);
        for (i, &t) in out.tx_count.iter().enumerate() {
            assert!(t <= u32::from(c.n_tx), "node {i} transmitted {t} times");
        }
        assert!(out.is_complete());
    }

    #[test]
    fn initiator_never_counts_as_receiver_slot() {
        let topo = generators::line(3, 10.0, disk(15.0));
        let rssi = topo.rssi_matrix();
        let mut rng = DetRng::new(3);
        let out = flood(&rssi, NodeId(1), 9, 60, &cfg(), &mut rng);
        assert_eq!(out.first_rx_slot[1], None);
        assert!(out.received[1]);
    }

    #[test]
    fn flood_reliable_across_seeds_on_flocklab() {
        let topo = han_net::flocklab::flocklab26_deterministic();
        let rssi = topo.rssi_matrix();
        let c = cfg();
        let mut complete = 0;
        for seed in 0..50 {
            let mut rng = DetRng::new(seed);
            let out = flood(&rssi, NodeId(0), seed, 60, &c, &mut rng);
            if out.is_complete() {
                complete += 1;
            }
        }
        assert!(
            complete >= 45,
            "flood should almost always cover the testbed, got {complete}/50"
        );
    }

    #[test]
    fn heavy_desync_degrades_but_capture_saves_some() {
        let topo = generators::grid(3, 3, 10.0, disk(25.0));
        let rssi = topo.rssi_matrix();
        let noisy = StConfig {
            desync_probability: 1.0,
            ..cfg()
        };
        let mut covered = 0.0;
        for seed in 0..20 {
            let mut rng = DetRng::new(seed);
            covered += flood(&rssi, NodeId(0), 1, 60, &noisy, &mut rng).coverage();
        }
        let mean = covered / 20.0;
        // Desynchronized relays collide constantly, but single-transmitter
        // slots and capture still move the frame: partial coverage.
        assert!(mean > 0.2 && mean < 1.0, "mean coverage {mean}");
    }

    #[test]
    fn listen_accounting_sane() {
        let topo = generators::line(3, 10.0, disk(15.0));
        let rssi = topo.rssi_matrix();
        let mut rng = DetRng::new(5);
        let c = cfg();
        let out = flood(&rssi, NodeId(0), 1, 60, &c, &mut rng);
        for i in 0..3 {
            assert_eq!(
                u32::try_from(out.slots_used).unwrap(),
                out.listen_slots[i] + out.tx_count[i],
                "node {i} slots must split between listen and tx"
            );
        }
    }

    #[test]
    #[should_panic(expected = "initiator out of range")]
    fn bad_initiator_panics() {
        let topo = generators::line(2, 10.0, disk(15.0));
        let rssi = topo.rssi_matrix();
        let mut rng = DetRng::new(1);
        flood(&rssi, NodeId(5), 1, 60, &cfg(), &mut rng);
    }
}
