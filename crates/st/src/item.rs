//! Data items shared through the communication plane.
//!
//! Every Device Interface publishes one small *item* (its status record plus
//! any pending user request); the MiniCast round disseminates the latest
//! item of every origin to every node. An [`ItemStore`] keeps, per origin,
//! the freshest item seen so far — versioned by a monotone sequence number
//! so stale retransmissions never overwrite newer state.

use bytes::Bytes;
use han_net::NodeId;
use std::collections::BTreeMap;

/// Serialized per-item header overhead on air: origin (1 B), sequence (2 B),
/// payload length (1 B).
pub const ITEM_HEADER_BYTES: usize = 4;

/// One versioned datum published by an origin node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// The node that produced this item.
    pub origin: NodeId,
    /// Monotone per-origin version; higher wins.
    pub seq: u32,
    /// Opaque application payload (a status record in `han-core`).
    pub payload: Bytes,
}

impl Item {
    /// Creates an item.
    pub fn new(origin: NodeId, seq: u32, payload: impl Into<Bytes>) -> Self {
        Item {
            origin,
            seq,
            payload: payload.into(),
        }
    }

    /// On-air size of this item inside an aggregate packet.
    pub fn wire_bytes(&self) -> usize {
        ITEM_HEADER_BYTES + self.payload.len()
    }

    /// A content identity for capture-effect modelling: two aggregates with
    /// equal content ids are bit-identical on air.
    pub fn content_key(&self) -> u64 {
        // FNV-1a over origin, seq and payload.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for b in self.origin.0.to_le_bytes() {
            eat(b);
        }
        for b in self.seq.to_le_bytes() {
            eat(b);
        }
        for &b in self.payload.iter() {
            eat(b);
        }
        h
    }
}

/// Per-node store of the freshest item per origin.
#[derive(Debug, Clone, Default)]
pub struct ItemStore {
    items: BTreeMap<NodeId, Item>,
}

impl ItemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ItemStore::default()
    }

    /// Merges an item, keeping it only if it is newer than what is stored
    /// for its origin. Returns `true` if the store changed.
    pub fn merge(&mut self, item: &Item) -> bool {
        match self.items.get(&item.origin) {
            Some(existing) if existing.seq >= item.seq => false,
            _ => {
                self.items.insert(item.origin, item.clone());
                true
            }
        }
    }

    /// Merges every item from an iterator; returns how many changed the
    /// store.
    pub fn merge_all<'a>(&mut self, items: impl IntoIterator<Item = &'a Item>) -> usize {
        items.into_iter().filter(|i| self.merge(i)).count()
    }

    /// Returns the stored item for `origin`, if any.
    pub fn get(&self, origin: NodeId) -> Option<&Item> {
        self.items.get(&origin)
    }

    /// Returns the stored sequence number for `origin`, if any.
    pub fn seq_of(&self, origin: NodeId) -> Option<u32> {
        self.items.get(&origin).map(|i| i.seq)
    }

    /// Number of distinct origins stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates stored items in origin order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Item> {
        self.items.values()
    }

    /// Returns the origins stored, in ascending order.
    pub fn origins(&self) -> Vec<NodeId> {
        self.items.keys().copied().collect()
    }

    /// Whether the store holds an item from every node in `0..n`.
    pub fn covers_all(&self, n: usize) -> bool {
        self.items.len() == n && self.items.keys().enumerate().all(|(i, k)| k.index() == i)
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl FromIterator<Item> for ItemStore {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        let mut store = ItemStore::new();
        for item in iter {
            store.merge(&item);
        }
        store
    }
}

impl Extend<Item> for ItemStore {
    fn extend<T: IntoIterator<Item = Item>>(&mut self, iter: T) {
        for item in iter {
            self.merge(&item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(origin: u32, seq: u32, payload: &[u8]) -> Item {
        Item::new(NodeId(origin), seq, payload.to_vec())
    }

    #[test]
    fn merge_keeps_freshest() {
        let mut s = ItemStore::new();
        assert!(s.merge(&item(1, 1, b"old")));
        assert!(s.merge(&item(1, 3, b"new")));
        assert!(!s.merge(&item(1, 2, b"stale")));
        assert!(!s.merge(&item(1, 3, b"dup")));
        assert_eq!(s.get(NodeId(1)).unwrap().payload.as_ref(), b"new");
        assert_eq!(s.seq_of(NodeId(1)), Some(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn covers_all_requires_contiguous_origins() {
        let mut s = ItemStore::new();
        s.merge(&item(0, 1, b"a"));
        s.merge(&item(2, 1, b"c"));
        assert!(!s.covers_all(3));
        s.merge(&item(1, 1, b"b"));
        assert!(s.covers_all(3));
        assert!(!s.covers_all(4));
    }

    #[test]
    fn iteration_is_origin_ordered() {
        let s: ItemStore = [item(5, 1, b"x"), item(1, 1, b"y"), item(3, 1, b"z")]
            .into_iter()
            .collect();
        let origins: Vec<u32> = s.iter().map(|i| i.origin.0).collect();
        assert_eq!(origins, vec![1, 3, 5]);
        assert_eq!(s.origins(), vec![NodeId(1), NodeId(3), NodeId(5)]);
    }

    #[test]
    fn wire_bytes_accounts_header() {
        assert_eq!(item(0, 0, b"12345678").wire_bytes(), 12);
    }

    #[test]
    fn content_key_distinguishes() {
        let a = item(1, 1, b"p");
        let b = item(1, 2, b"p");
        let c = item(2, 1, b"p");
        let d = item(1, 1, b"q");
        assert_ne!(a.content_key(), b.content_key());
        assert_ne!(a.content_key(), c.content_key());
        assert_ne!(a.content_key(), d.content_key());
        assert_eq!(a.content_key(), item(1, 1, b"p").content_key());
    }

    #[test]
    fn merge_all_counts_changes() {
        let mut s = ItemStore::new();
        let items = [item(0, 1, b"a"), item(1, 1, b"b"), item(0, 1, b"a")];
        assert_eq!(s.merge_all(items.iter()), 2);
        s.clear();
        assert!(s.is_empty());
    }
}
