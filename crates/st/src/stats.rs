//! Multi-round dissemination statistics.
//!
//! Aggregates per-round [`RoundReport`]s into the figures a protocol
//! evaluation reports: mean/minimum reliability, all-to-all success rate,
//! radio duty cycle and transmission counts.

use crate::minicast::RoundReport;
use han_sim::time::SimDuration;

/// Accumulated statistics over a sequence of MiniCast rounds.
#[derive(Debug, Clone, Default)]
pub struct DisseminationStats {
    rounds: u64,
    all_to_all_rounds: u64,
    reliability_sum: f64,
    worst_reliability: f64,
    total_tx: u64,
    total_radio_on: SimDuration,
    nodes: usize,
}

impl DisseminationStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        DisseminationStats {
            worst_reliability: 1.0,
            ..Default::default()
        }
    }

    /// Folds one round report into the statistics.
    pub fn record(&mut self, report: &RoundReport) {
        self.rounds += 1;
        if report.all_to_all {
            self.all_to_all_rounds += 1;
        }
        self.reliability_sum += report.reliability;
        self.worst_reliability = self.worst_reliability.min(report.worst_node_reliability());
        self.total_tx += report.tx_count.iter().map(|&t| u64::from(t)).sum::<u64>();
        self.total_radio_on += report.total_radio_on();
        self.nodes = report.coverage.len();
    }

    /// The raw accumulator words, for checkpointing: `(rounds,
    /// all_to_all_rounds, reliability_sum, worst_reliability, total_tx,
    /// total_radio_on, nodes)`. Round-trips exactly through
    /// [`DisseminationStats::from_raw_parts`].
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> (u64, u64, f64, f64, u64, SimDuration, usize) {
        (
            self.rounds,
            self.all_to_all_rounds,
            self.reliability_sum,
            self.worst_reliability,
            self.total_tx,
            self.total_radio_on,
            self.nodes,
        )
    }

    /// Rebuilds an accumulator from [`DisseminationStats::raw_parts`].
    #[allow(clippy::type_complexity)]
    pub fn from_raw_parts(parts: (u64, u64, f64, f64, u64, SimDuration, usize)) -> Self {
        let (
            rounds,
            all_to_all_rounds,
            reliability_sum,
            worst_reliability,
            total_tx,
            total_radio_on,
            nodes,
        ) = parts;
        DisseminationStats {
            rounds,
            all_to_all_rounds,
            reliability_sum,
            worst_reliability,
            total_tx,
            total_radio_on,
            nodes,
        }
    }

    /// Number of rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Fraction of rounds that achieved full all-to-all delivery.
    pub fn all_to_all_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.all_to_all_rounds as f64 / self.rounds as f64
    }

    /// Mean per-round reliability.
    pub fn mean_reliability(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.reliability_sum / self.rounds as f64
    }

    /// Worst per-node reliability seen in any round.
    pub fn worst_reliability(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.worst_reliability
    }

    /// Total transmissions across all nodes and rounds.
    pub fn total_tx(&self) -> u64 {
        self.total_tx
    }

    /// Mean radio-on time per node per round.
    pub fn mean_radio_on_per_round(&self) -> SimDuration {
        if self.rounds == 0 || self.nodes == 0 {
            return SimDuration::ZERO;
        }
        self.total_radio_on / (self.rounds * self.nodes as u64)
    }

    /// Estimated radio energy per node per day at the given round period,
    /// in millijoules — CC2420-class consumption (≈ 18.8 mA at 3 V while
    /// the radio is on; transmit draws within 10 % of receive, so on-time
    /// is the whole story).
    pub fn energy_per_node_per_day_mj(&self, round_period: SimDuration) -> f64 {
        if round_period.is_zero() {
            return 0.0;
        }
        let on_per_round_s = self.mean_radio_on_per_round().as_secs_f64();
        let rounds_per_day = 86_400.0 / round_period.as_secs_f64();
        on_per_round_s * rounds_per_day * 18.8 * 3.0
    }

    /// Radio duty cycle implied by the round period.
    pub fn duty_cycle(&self, round_period: SimDuration) -> f64 {
        if round_period.is_zero() {
            return 0.0;
        }
        self.mean_radio_on_per_round().as_secs_f64() / round_period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StConfig;
    use crate::item::{Item, ItemStore};
    use crate::minicast::run_round;
    use han_net::NodeId;
    use han_sim::rng::DetRng;

    #[test]
    fn accumulates_over_rounds() {
        let topo = han_net::flocklab::flocklab26_deterministic();
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 26];
        for (i, store) in stores.iter_mut().enumerate() {
            store.merge(&Item::new(NodeId(i as u32), 1, vec![0u8; 8]));
        }
        let cfg = StConfig::default();
        let mut rng = DetRng::new(1);
        let mut stats = DisseminationStats::new();
        for r in 0..5 {
            let report = run_round(&rssi, &mut stores, NodeId(0), &cfg, r, &mut rng);
            stats.record(&report);
        }
        assert_eq!(stats.rounds(), 5);
        assert!(stats.mean_reliability() > 0.95);
        assert!(stats.all_to_all_rate() > 0.0);
        assert!(stats.total_tx() > 0);
        let dc = stats.duty_cycle(cfg.round_period);
        assert!(dc > 0.0 && dc < 1.0, "duty cycle {dc}");
        // Energy per day consistent with the duty cycle: dc × 86400 s at
        // 56.4 mW.
        let e = stats.energy_per_node_per_day_mj(cfg.round_period);
        let expected = dc * 86_400.0 * 18.8 * 3.0;
        assert!(
            (e - expected).abs() < expected * 1e-9,
            "e={e} expected={expected}"
        );
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = DisseminationStats::new();
        assert_eq!(stats.rounds(), 0);
        assert_eq!(stats.mean_reliability(), 0.0);
        assert_eq!(stats.all_to_all_rate(), 0.0);
        assert_eq!(stats.mean_radio_on_per_round(), SimDuration::ZERO);
    }
}
