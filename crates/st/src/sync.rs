//! Time-synchronization analysis: crystal drift vs. the sync beacon.
//!
//! Every MiniCast round starts with a sync-beacon flood (phase 0). A node
//! that receives it re-aligns its round clock; a node that misses it free-
//! runs on its crystal, whose frequency error (±10–40 ppm for the TelosB's
//! watch crystal) makes its *round boundary* estimate drift. Relays inside
//! a flood stay sub-microsecond aligned regardless (they time off packet
//! reception — that is Glossy's trick), so drift does not break
//! constructive interference; what it erodes is the guard margin at the
//! *start* of each round for nodes with long sync outages.
//!
//! [`SyncTracker`] consumes the per-round `synced` vector from
//! [`crate::minicast::RoundReport`] and answers: how stale is each node's
//! alignment, what is its worst-case boundary error, and does any node
//! exceed the slot guard?

use han_sim::rng::DetRng;
use han_sim::time::SimDuration;

/// Per-node crystal model plus sync bookkeeping.
#[derive(Debug, Clone)]
pub struct SyncTracker {
    /// Signed crystal frequency error per node, in parts per million.
    drift_ppm: Vec<f64>,
    /// Rounds since each node last received a sync beacon.
    rounds_since_sync: Vec<u32>,
    round_period: SimDuration,
}

impl SyncTracker {
    /// Creates a tracker for `n` nodes with crystal errors drawn
    /// deterministically from `seed`, normal with the given std-dev (TelosB
    /// class: σ ≈ 20 ppm).
    pub fn new(n: usize, sigma_ppm: f64, round_period: SimDuration, seed: u64) -> Self {
        assert!(sigma_ppm >= 0.0, "sigma must be non-negative");
        let mut rng = DetRng::for_stream(seed, "crystal-drift");
        SyncTracker {
            drift_ppm: (0..n).map(|_| rng.gen_normal(0.0, sigma_ppm)).collect(),
            rounds_since_sync: vec![0; n],
            round_period,
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.drift_ppm.len()
    }

    /// Whether the tracker is empty.
    pub fn is_empty(&self) -> bool {
        self.drift_ppm.is_empty()
    }

    /// A node's crystal error in ppm.
    pub fn drift_ppm(&self, node: usize) -> f64 {
        self.drift_ppm[node]
    }

    /// Records one round's sync outcome (`synced[i]` = node `i` received
    /// the beacon).
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the node count.
    pub fn record_round(&mut self, synced: &[bool]) {
        assert_eq!(synced.len(), self.len(), "one sync flag per node");
        for (count, &ok) in self.rounds_since_sync.iter_mut().zip(synced) {
            *count = if ok { 0 } else { count.saturating_add(1) };
        }
    }

    /// Rounds since node `i` last heard a beacon (0 = this round).
    pub fn rounds_since_sync(&self, node: usize) -> u32 {
        self.rounds_since_sync[node]
    }

    /// Worst-case round-boundary error of a node: `|drift| × outage time`.
    pub fn boundary_error(&self, node: usize) -> SimDuration {
        let outage_s = self.round_period.as_secs_f64() * f64::from(self.rounds_since_sync[node]);
        let err_s = self.drift_ppm[node].abs() * 1e-6 * outage_s;
        SimDuration::from_secs_f64(err_s)
    }

    /// The largest boundary error across all nodes.
    pub fn worst_boundary_error(&self) -> SimDuration {
        (0..self.len())
            .map(|i| self.boundary_error(i))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Nodes whose boundary error exceeds `guard` — candidates to sit out
    /// a round (their slot alignment can no longer be trusted).
    pub fn desynchronized_nodes(&self, guard: SimDuration) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.boundary_error(i) > guard)
            .collect()
    }

    /// The full staleness vector (rounds since each node's last beacon),
    /// for checkpointing a running simulation. The crystal drifts are
    /// *not* part of the snapshot — they are redrawn deterministically
    /// from the seed on reconstruction.
    pub fn staleness_snapshot(&self) -> &[u32] {
        &self.rounds_since_sync
    }

    /// Restores a staleness vector captured by
    /// [`SyncTracker::staleness_snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the node count.
    pub fn restore_staleness(&mut self, rounds_since_sync: &[u32]) {
        assert_eq!(
            rounds_since_sync.len(),
            self.len(),
            "one staleness counter per node"
        );
        self.rounds_since_sync.copy_from_slice(rounds_since_sync);
    }

    /// How many rounds a node with crystal error `ppm` can free-run before
    /// its boundary error exceeds `guard`.
    pub fn sustainable_outage_rounds(
        ppm: f64,
        guard: SimDuration,
        round_period: SimDuration,
    ) -> u32 {
        if ppm == 0.0 {
            return u32::MAX;
        }
        let per_round_s = ppm.abs() * 1e-6 * round_period.as_secs_f64();
        if per_round_s <= 0.0 {
            return u32::MAX;
        }
        (guard.as_secs_f64() / per_round_s).floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(n: usize) -> SyncTracker {
        SyncTracker::new(n, 20.0, SimDuration::from_secs(2), 7)
    }

    #[test]
    fn drift_is_deterministic_and_spread() {
        let a = tracker(10);
        let b = tracker(10);
        for i in 0..10 {
            assert_eq!(a.drift_ppm(i), b.drift_ppm(i));
        }
        let distinct = (1..10)
            .filter(|&i| a.drift_ppm(i) != a.drift_ppm(0))
            .count();
        assert!(distinct > 0, "crystals should differ");
    }

    #[test]
    fn synced_nodes_have_zero_error() {
        let mut t = tracker(3);
        t.record_round(&[true, true, true]);
        for i in 0..3 {
            assert_eq!(t.rounds_since_sync(i), 0);
            assert_eq!(t.boundary_error(i), SimDuration::ZERO);
        }
    }

    #[test]
    fn outage_accumulates_error_linearly() {
        let mut t = tracker(2);
        for _ in 0..10 {
            t.record_round(&[true, false]);
        }
        assert_eq!(t.rounds_since_sync(0), 0);
        assert_eq!(t.rounds_since_sync(1), 10);
        let e5 = {
            let mut t2 = tracker(2);
            for _ in 0..5 {
                t2.record_round(&[true, false]);
            }
            t2.boundary_error(1)
        };
        let e10 = t.boundary_error(1);
        // Linear up to the 1 µs quantization of SimDuration.
        let diff = e10.as_micros() as i64 - (e5.as_micros() * 2) as i64;
        assert!(diff.abs() <= 1, "error must be linear, off by {diff} us");
        assert_eq!(t.worst_boundary_error(), e10);
    }

    #[test]
    fn resync_resets_error() {
        let mut t = tracker(1);
        for _ in 0..20 {
            t.record_round(&[false]);
        }
        assert!(t.boundary_error(0) > SimDuration::ZERO);
        t.record_round(&[true]);
        assert_eq!(t.boundary_error(0), SimDuration::ZERO);
    }

    #[test]
    fn desynchronized_detection() {
        let mut t = tracker(4);
        // 100 rounds of outage for node 2 only.
        for _ in 0..100 {
            t.record_round(&[true, true, false, true]);
        }
        // 20 ppm × 200 s = 4 ms; guard of 1 ms must flag it (unless node 2
        // drew an unusually good crystal; with σ=20 ppm that is unlikely
        // but guard by checking its actual drift).
        let guard = SimDuration::from_millis(1);
        let flagged = t.desynchronized_nodes(guard);
        if t.drift_ppm(2).abs() * 1e-6 * 200.0 > 0.001 {
            assert_eq!(flagged, vec![2]);
        } else {
            assert!(flagged.is_empty());
        }
    }

    #[test]
    fn staleness_snapshot_round_trips() {
        let mut t = tracker(3);
        for _ in 0..7 {
            t.record_round(&[true, false, false]);
        }
        t.record_round(&[true, true, false]);
        let snap: Vec<u32> = t.staleness_snapshot().to_vec();
        assert_eq!(snap, vec![0, 0, 8]);
        let mut fresh = tracker(3);
        fresh.restore_staleness(&snap);
        for i in 0..3 {
            assert_eq!(fresh.rounds_since_sync(i), t.rounds_since_sync(i));
            assert_eq!(fresh.boundary_error(i), t.boundary_error(i));
        }
    }

    #[test]
    fn sustainable_outage_math() {
        // 20 ppm at 2 s rounds = 40 µs error per round; a 160 µs guard
        // tolerates 4 rounds.
        let rounds = SyncTracker::sustainable_outage_rounds(
            20.0,
            SimDuration::from_micros(160),
            SimDuration::from_secs(2),
        );
        assert_eq!(rounds, 4);
        assert_eq!(
            SyncTracker::sustainable_outage_rounds(
                0.0,
                SimDuration::from_micros(160),
                SimDuration::from_secs(2)
            ),
            u32::MAX
        );
    }
}
