//! Many-to-one collection (converge-cast) over synchronous floods.
//!
//! The companion protocol of the paper's reference 8 (Saha et al.,
//! INFOCOM 2017): all nodes deliver their items to a single *sink*. In a
//! centralized HAN this is how the controller would learn device statuses —
//! we implement it both for completeness and as the communication substrate
//! of the centralized baseline scheduler in `han-core`.
//!
//! Implementation: TDMA phases as in MiniCast, but only the sink's store is
//! the delivery target, and aggregates are built the same way so earlier
//! phases opportunistically carry other nodes' items toward the sink.

use crate::config::StConfig;
use crate::glossy;
use crate::item::ItemStore;
use crate::minicast::AGGREGATE_HEADER_BYTES;
use han_net::NodeId;
use han_radio::phy;
use han_radio::units::Dbm;
use han_sim::rng::DetRng;

/// Report of one collection round.
#[derive(Debug, Clone)]
pub struct CollectReport {
    /// Number of distinct origins the sink holds after the round.
    pub sink_coverage: usize,
    /// Number of origins that published.
    pub published: usize,
    /// Fraction of published origins delivered to the sink.
    pub sink_reliability: f64,
    /// Transmissions per node.
    pub tx_count: Vec<u32>,
}

/// Executes one collection round toward `sink`.
///
/// `stores[i]` is node `i`'s store; the sink's store accumulates
/// everything it hears. Relay stores also merge (opportunistic caching), so
/// consecutive rounds converge quickly.
///
/// # Panics
///
/// Panics if `stores.len()` does not match the RSSI matrix dimension.
pub fn run_collection_round(
    rssi: &[Vec<Dbm>],
    stores: &mut [ItemStore],
    sink: NodeId,
    config: &StConfig,
    round_index: u64,
    rng: &mut DetRng,
) -> CollectReport {
    let n = rssi.len();
    assert_eq!(stores.len(), n, "one item store per node required");
    config.validate().expect("invalid ST configuration");

    let mut tx_count = vec![0u32; n];
    let published = (0..n)
        .filter(|&i| stores[i].get(NodeId(i as u32)).is_some())
        .count();

    for k in 0..n {
        let origin = NodeId(((round_index as usize + k) % n) as u32);
        if origin == sink {
            continue;
        }
        // Reuse MiniCast aggregation: own item plus whatever fits.
        let items = crate::minicast::build_aggregate(
            &stores[origin.index()],
            origin,
            round_index.wrapping_add(k as u64),
            config.max_packet_payload,
        );
        if items.is_empty() {
            continue;
        }
        let payload = AGGREGATE_HEADER_BYTES
            + items
                .iter()
                .map(crate::item::Item::wire_bytes)
                .sum::<usize>();
        let content = origin.0 as u64 ^ (round_index << 32) ^ (k as u64) << 8;
        let out = glossy::flood(
            rssi,
            origin,
            content,
            phy::frame_bytes(payload).expect("aggregate fits"),
            config,
            rng,
        );
        for (count, tx) in tx_count.iter_mut().zip(&out.tx_count) {
            *count += tx;
        }
        for (node, store) in stores.iter_mut().enumerate() {
            if out.received[node] && node != origin.index() {
                store.merge_all(items.iter());
            }
        }
    }

    let sink_coverage = stores[sink.index()].len();
    let sink_reliability = if published == 0 {
        1.0
    } else {
        sink_coverage.min(published) as f64 / published as f64
    };
    CollectReport {
        sink_coverage,
        published,
        sink_reliability,
        tx_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use han_net::generators;
    use han_radio::channel::ChannelModel;

    fn publish_all(stores: &mut [ItemStore]) {
        for (i, store) in stores.iter_mut().enumerate() {
            store.merge(&Item::new(NodeId(i as u32), 1, vec![i as u8; 8]));
        }
    }

    #[test]
    fn sink_collects_grid() {
        let topo = generators::grid(3, 3, 10.0, ChannelModel::UnitDisk { range_m: 15.0 });
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 9];
        publish_all(&mut stores);
        let mut rng = DetRng::new(1);
        let report = run_collection_round(
            &rssi,
            &mut stores,
            NodeId(4),
            &StConfig::default(),
            0,
            &mut rng,
        );
        assert_eq!(report.published, 9);
        assert_eq!(report.sink_coverage, 9);
        assert!((report.sink_reliability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sink_collects_flocklab_within_two_rounds() {
        let topo = han_net::flocklab::flocklab26_deterministic();
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 26];
        publish_all(&mut stores);
        let mut rng = DetRng::new(2);
        let cfg = StConfig::default();
        run_collection_round(&rssi, &mut stores, NodeId(5), &cfg, 0, &mut rng);
        let second = run_collection_round(&rssi, &mut stores, NodeId(5), &cfg, 1, &mut rng);
        assert!(
            second.sink_reliability > 0.99,
            "sink got {}",
            second.sink_reliability
        );
    }

    #[test]
    fn empty_network_trivially_reliable() {
        let topo = generators::line(3, 10.0, ChannelModel::UnitDisk { range_m: 15.0 });
        let rssi = topo.rssi_matrix();
        let mut stores = vec![ItemStore::new(); 3];
        let mut rng = DetRng::new(3);
        let report = run_collection_round(
            &rssi,
            &mut stores,
            NodeId(0),
            &StConfig::default(),
            0,
            &mut rng,
        );
        assert_eq!(report.published, 0);
        assert!((report.sink_reliability - 1.0).abs() < 1e-12);
    }
}
