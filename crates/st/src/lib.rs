//! # han-st — synchronous-transmission protocol stack
//!
//! The communication substrate of the paper's decentralized HAN: Glossy
//! floods and the MiniCast many-to-many sharing protocol, executed
//! packet-by-packet against the `han-radio` capture/interference model on a
//! `han-net` topology.
//!
//! * [`item`] — versioned data items and per-node [`item::ItemStore`]s;
//! * [`config`] — [`config::StConfig`]: round period (paper: 2 s), slot
//!   timing, Glossy `n_tx`, jitter/desync model;
//! * [`glossy`] — the synchronous flood primitive;
//! * [`minicast`] — the all-to-all round: sync beacon + one aggregated
//!   flood per node in rotating TDMA order ([`minicast::run_round`]);
//! * [`collect`] — many-to-one converge-cast (substrate of the centralized
//!   baseline);
//! * [`stats`] — multi-round reliability / radio-cost accounting;
//! * [`sync`] — crystal-drift vs. sync-beacon analysis
//!   ([`sync::SyncTracker`]).
//!
//! # Examples
//!
//! One all-to-all round on the 26-node testbed layout:
//!
//! ```
//! use han_st::config::StConfig;
//! use han_st::item::{Item, ItemStore};
//! use han_st::minicast::run_round;
//! use han_net::NodeId;
//! use han_sim::rng::DetRng;
//!
//! let topo = han_net::flocklab::flocklab26_deterministic();
//! let rssi = topo.rssi_matrix();
//! let mut stores = vec![ItemStore::new(); topo.len()];
//! for (i, store) in stores.iter_mut().enumerate() {
//!     store.merge(&Item::new(NodeId(i as u32), 1, vec![0u8; 8]));
//! }
//! let mut rng = DetRng::new(42);
//! let report = run_round(&rssi, &mut stores, NodeId(0), &StConfig::default(), 0, &mut rng);
//! assert!(report.reliability > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod config;
pub mod glossy;
pub mod item;
pub mod minicast;
pub mod stats;
pub mod sync;

pub use config::StConfig;
pub use item::{Item, ItemStore};
pub use minicast::RoundReport;
pub use stats::DisseminationStats;
pub use sync::SyncTracker;
