//! Protocol configuration for the synchronous-transmission stack.

use han_radio::capture::CaptureConfig;
use han_radio::phy;
use han_sim::time::SimDuration;

/// Configuration of Glossy floods and MiniCast rounds.
///
/// Defaults follow the paper's setup: a 2-second round period with slot
/// timing derived from 802.15.4 frame air time.
#[derive(Debug, Clone, PartialEq)]
pub struct StConfig {
    /// Period between consecutive communication rounds (paper: 2 s).
    pub round_period: SimDuration,
    /// TDMA slot length; must exceed the largest frame air time plus
    /// processing guard.
    pub slot_len: SimDuration,
    /// Number of transmissions each node makes per flood (Glossy N_TX).
    pub n_tx: u8,
    /// Slots allotted to one flood phase; bounds flood depth.
    pub flood_slots: usize,
    /// Maximum aggregate payload per packet, in bytes.
    pub max_packet_payload: usize,
    /// Standard deviation of relay transmit-timing jitter, in nanoseconds.
    ///
    /// Relays time their transmission off the reception instant, so this is
    /// small (sub-microsecond) regardless of crystal drift.
    pub tx_jitter_ns: u64,
    /// Probability that a transmitter fires desynchronized (offset far
    /// outside the constructive-interference window) in a given slot,
    /// e.g. due to a late interrupt. Breaks CI for that slot.
    pub desync_probability: f64,
    /// Capture / constructive-interference model parameters.
    pub capture: CaptureConfig,
}

impl Default for StConfig {
    fn default() -> Self {
        StConfig {
            round_period: SimDuration::from_secs(2),
            // Largest frame (4256 µs) + 744 µs turnaround/guard.
            slot_len: SimDuration::from_millis(5),
            n_tx: 2,
            flood_slots: 8,
            max_packet_payload: phy::MAX_PAYLOAD_BYTES,
            tx_jitter_ns: 200,
            desync_probability: 0.001,
            capture: CaptureConfig::default(),
        }
    }
}

impl StConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.slot_len < phy::max_frame_air_time() {
            return Err(format!(
                "slot length {} shorter than max frame air time {}",
                self.slot_len,
                phy::max_frame_air_time()
            ));
        }
        if self.n_tx == 0 {
            return Err("n_tx must be at least 1".into());
        }
        if self.flood_slots < 2 {
            return Err("flood needs at least 2 slots".into());
        }
        if self.max_packet_payload > phy::MAX_PAYLOAD_BYTES {
            return Err(format!(
                "packet payload {} exceeds PHY maximum {}",
                self.max_packet_payload,
                phy::MAX_PAYLOAD_BYTES
            ));
        }
        if !(0.0..=1.0).contains(&self.desync_probability) {
            return Err("desync probability must be in [0, 1]".into());
        }
        Ok(())
    }

    /// Duration of one flood phase.
    pub fn phase_duration(&self) -> SimDuration {
        self.slot_len * self.flood_slots as u64
    }

    /// How many flood phases fit in one round period.
    pub fn phases_per_round(&self) -> usize {
        (self.round_period.as_micros() / self.phase_duration().as_micros()) as usize
    }

    /// The largest network a round can serve: one sync phase plus one data
    /// phase per node must fit the round period.
    pub fn max_nodes_per_round(&self) -> usize {
        self.phases_per_round().saturating_sub(1)
    }

    /// Validates that a network of `n` nodes fits one round.
    ///
    /// # Errors
    ///
    /// Returns a description of the overrun.
    pub fn check_fits_round(&self, n: usize) -> Result<(), String> {
        let max = self.max_nodes_per_round();
        if n > max {
            return Err(format!(
                "{n} nodes need {} of airtime but the {} round fits only {max}                  data phases",
                self.phase_duration() * (n as u64 + 1),
                self.round_period
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        StConfig::default().validate().expect("default config");
    }

    #[test]
    fn default_fits_paper_round() {
        let cfg = StConfig::default();
        // One phase = 8 slots × 5 ms = 40 ms; 2 s round fits 50 phases —
        // comfortably more than 26 + sync.
        assert_eq!(cfg.phase_duration(), SimDuration::from_millis(40));
        assert_eq!(cfg.phases_per_round(), 50);
    }

    #[test]
    fn round_capacity_checks() {
        let cfg = StConfig::default();
        assert_eq!(cfg.max_nodes_per_round(), 49);
        assert!(cfg.check_fits_round(26).is_ok());
        assert!(cfg.check_fits_round(49).is_ok());
        let err = cfg.check_fits_round(50).unwrap_err();
        assert!(err.contains("50 nodes"), "{err}");
    }

    #[test]
    fn rejects_short_slots() {
        let cfg = StConfig {
            slot_len: SimDuration::from_millis(1),
            ..StConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("slot length"));
    }

    #[test]
    fn rejects_zero_ntx_and_tiny_floods() {
        let cfg = StConfig {
            n_tx: 0,
            ..StConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = StConfig {
            flood_slots: 1,
            ..StConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_oversized_payload() {
        let cfg = StConfig {
            max_packet_payload: 500,
            ..StConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_probability() {
        let cfg = StConfig {
            desync_probability: 1.5,
            ..StConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
