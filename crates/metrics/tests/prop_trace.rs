//! Property-based tests of load-trace statistics identities.

use han_metrics::stats::{max_step_up, percentile, Summary};
use han_metrics::timeseries::LoadTrace;
use han_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = LoadTrace> {
    // Strictly increasing times with bounded values.
    prop::collection::vec((1u64..200, 0u32..20_000), 1..60).prop_map(|steps| {
        let mut trace = LoadTrace::new();
        let mut t = 0u64;
        for (dt, kw_milli) in steps {
            t += dt;
            trace.record(SimTime::from_secs(t), f64::from(kw_milli) / 1000.0);
        }
        trace
    })
}

proptest! {
    #[test]
    fn peak_bounds_mean(trace in arb_trace()) {
        let end = SimTime::from_secs(20_000);
        let mean = trace.time_weighted_mean(SimTime::ZERO, end);
        let peak = trace.peak(SimTime::ZERO, end);
        prop_assert!(peak >= mean - 1e-12, "peak {} < mean {}", peak, mean);
        prop_assert!(mean >= 0.0);
    }

    #[test]
    fn energy_equals_mean_times_duration(trace in arb_trace()) {
        let end = SimTime::from_secs(20_000);
        let mean = trace.time_weighted_mean(SimTime::ZERO, end);
        let energy = trace.energy_kwh(SimTime::ZERO, end);
        let hours = (end - SimTime::ZERO).as_hours_f64();
        prop_assert!((energy - mean * hours).abs() < 1e-9);
    }

    #[test]
    fn interval_additivity(trace in arb_trace(), split_s in 1u64..19_999) {
        let end = SimTime::from_secs(20_000);
        let split = SimTime::from_secs(split_s);
        let whole = trace.energy_kwh(SimTime::ZERO, end);
        let parts =
            trace.energy_kwh(SimTime::ZERO, split) + trace.energy_kwh(split, end);
        prop_assert!((whole - parts).abs() < 1e-9);
    }

    #[test]
    fn sampled_stats_bounded_by_exact(trace in arb_trace()) {
        let end = SimTime::from_secs(20_000);
        let samples = trace.sample(SimTime::ZERO, end, SimDuration::from_secs(60));
        let summary = Summary::of(&samples);
        let exact_peak = trace.peak(SimTime::ZERO, end);
        // Sampling can only miss peaks, never invent them.
        prop_assert!(summary.peak <= exact_peak + 1e-12);
        prop_assert!(summary.min >= 0.0);
    }

    #[test]
    fn value_at_matches_last_breakpoint(trace in arb_trace(), at_s in 0u64..25_000) {
        let at = SimTime::from_secs(at_s);
        let v = trace.value_at(at);
        let expected = trace
            .points()
            .iter()
            .rev()
            .find(|&&(t, _)| t <= at)
            .map_or(0.0, |&(_, kw)| kw);
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn percentile_is_monotone(values in prop::collection::vec(0.0f64..100.0, 1..50)) {
        let p25 = percentile(&values, 25.0);
        let p50 = percentile(&values, 50.0);
        let p75 = percentile(&values, 75.0);
        prop_assert!(p25 <= p50 && p50 <= p75);
        let s = Summary::of(&values);
        prop_assert!(percentile(&values, 0.0) >= s.min - 1e-12);
        prop_assert!(percentile(&values, 100.0) <= s.peak + 1e-12);
    }

    #[test]
    fn max_step_up_nonnegative_and_tight(values in prop::collection::vec(0.0f64..50.0, 2..40)) {
        let step = max_step_up(&values);
        prop_assert!(step >= 0.0);
        // There is an adjacent pair achieving it (within float tolerance).
        let best = values
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        prop_assert!((step - best).abs() < 1e-12);
    }
}
