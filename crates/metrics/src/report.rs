//! Experiment reporting: comparison tables and CSV export.
//!
//! The figure-reproduction harnesses print their results through this
//! module so every experiment reports in the same format and the
//! paper-vs-measured comparison in `EXPERIMENTS.md` can be regenerated
//! mechanically.

use crate::stats::reduction_percent;
use std::fmt::Write as _;

/// One metric compared between the uncoordinated baseline and the
/// coordinated strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Metric name (e.g. `"peak load (kW)"`).
    pub metric: String,
    /// Baseline ("w/o coordination") value.
    pub baseline: f64,
    /// Coordinated value.
    pub coordinated: f64,
}

impl ComparisonRow {
    /// Creates a row.
    pub fn new(metric: impl Into<String>, baseline: f64, coordinated: f64) -> Self {
        ComparisonRow {
            metric: metric.into(),
            baseline,
            coordinated,
        }
    }

    /// Reduction achieved by coordination, in percent.
    pub fn reduction_percent(&self) -> f64 {
        reduction_percent(self.baseline, self.coordinated)
    }
}

/// A named comparison table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComparisonReport {
    title: String,
    rows: Vec<ComparisonRow>,
}

impl ComparisonReport {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        ComparisonReport {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: ComparisonRow) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// The rows recorded so far.
    pub fn rows(&self) -> &[ComparisonRow] {
        &self.rows
    }

    /// Renders a fixed-width ASCII table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .chain([self.title.len(), 24])
            .max()
            .unwrap_or(24);
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = writeln!(
            out,
            "{:<width$}  {:>14}  {:>14}  {:>10}",
            "metric", "w/o coord", "with coord", "reduction"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<width$}  {:>14.3}  {:>14.3}  {:>9.1}%",
                r.metric,
                r.baseline,
                r.coordinated,
                r.reduction_percent()
            );
        }
        out
    }

    /// Renders `metric,baseline,coordinated,reduction_percent` CSV with a
    /// header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,baseline,coordinated,reduction_percent\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                csv_escape(&r.metric),
                r.baseline,
                r.coordinated,
                r.reduction_percent()
            );
        }
        out
    }
}

/// Renders a simple named series as CSV (`x,series1,series2,...`).
///
/// All series must share the length of `xs`.
///
/// # Panics
///
/// Panics if series lengths differ from `xs`.
pub fn series_csv(x_name: &str, xs: &[f64], series: &[(&str, &[f64])]) -> String {
    for (name, ys) in series {
        assert_eq!(
            ys.len(),
            xs.len(),
            "series '{name}' length mismatches x axis"
        );
    }
    let mut out = String::new();
    let _ = write!(out, "{}", csv_escape(x_name));
    for (name, _) in series {
        let _ = write!(out, ",{}", csv_escape(name));
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x}");
        for (_, ys) in series {
            let _ = write!(out, ",{}", ys[i]);
        }
        out.push('\n');
    }
    out
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_reduction() {
        let r = ComparisonRow::new("peak load (kW)", 14.0, 7.0);
        assert!((r.reduction_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn table_contains_all_fields() {
        let mut rep = ComparisonReport::new("high arrival rate");
        rep.push(ComparisonRow::new("peak load (kW)", 14.0, 7.0));
        rep.push(ComparisonRow::new("std dev (kW)", 3.5, 1.5));
        let table = rep.to_table();
        assert!(table.contains("high arrival rate"));
        assert!(table.contains("peak load (kW)"));
        assert!(table.contains("50.0%"));
        assert!(table.contains("w/o coord"));
        assert_eq!(rep.rows().len(), 2);
    }

    #[test]
    fn csv_output() {
        let mut rep = ComparisonReport::new("t");
        rep.push(ComparisonRow::new("peak", 10.0, 5.0));
        let csv = rep.to_csv();
        assert!(csv.starts_with("metric,baseline"));
        assert!(csv.contains("peak,10,5,50"));
    }

    #[test]
    fn csv_escaping() {
        let mut rep = ComparisonReport::new("t");
        rep.push(ComparisonRow::new("a,b\"c", 1.0, 1.0));
        assert!(rep.to_csv().contains("\"a,b\"\"c\""));
    }

    #[test]
    fn series_csv_shape() {
        let csv = series_csv(
            "minutes",
            &[0.0, 1.0],
            &[("without", &[3.0, 4.0]), ("with", &[2.0, 2.0])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "minutes,without,with");
        assert_eq!(lines[1], "0,3,2");
        assert_eq!(lines[2], "1,4,2");
    }

    #[test]
    #[should_panic(expected = "length mismatches")]
    fn series_csv_length_checked() {
        series_csv("x", &[0.0], &[("bad", &[1.0, 2.0])]);
    }
}
