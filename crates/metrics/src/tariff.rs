//! Electricity tariffs: what the load shape costs.
//!
//! The paper motivates load management with electricity pricing and
//! peak-demand limits. This module prices a [`LoadTrace`] under the two
//! standard residential schemes:
//!
//! * **time-of-use energy charges** — a rate per kWh that varies by hour
//!   of day ([`TimeOfUseTariff`]);
//! * **peak-demand charges** — a monthly fee per kW of the highest demand
//!   reached ([`demand_charge`]), the component coordination attacks
//!   directly.

use crate::timeseries::LoadTrace;
use han_sim::time::{SimDuration, SimTime};

/// A 24-hour time-of-use price profile, currency units per kWh.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeOfUseTariff {
    hourly_rate: [f64; 24],
}

impl TimeOfUseTariff {
    /// Creates a tariff from 24 hourly rates (per kWh).
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or non-finite.
    pub fn new(hourly_rate: [f64; 24]) -> Self {
        assert!(
            hourly_rate.iter().all(|r| r.is_finite() && *r >= 0.0),
            "tariff rates must be finite and non-negative"
        );
        TimeOfUseTariff { hourly_rate }
    }

    /// A flat tariff.
    pub fn flat(rate_per_kwh: f64) -> Self {
        TimeOfUseTariff::new([rate_per_kwh; 24])
    }

    /// A typical residential ToU schedule: off-peak 0.10/kWh (23:00–06:00),
    /// shoulder 0.18, evening peak 0.32 (17:00–21:00).
    pub fn typical_residential() -> Self {
        let mut r = [0.18f64; 24];
        for h in [23, 0, 1, 2, 3, 4, 5] {
            r[h] = 0.10;
        }
        for rate in &mut r[17..21] {
            *rate = 0.32;
        }
        TimeOfUseTariff::new(r)
    }

    /// The rate in force at a simulation instant (wraps daily).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.hourly_rate[((t.as_secs() / 3600) % 24) as usize]
    }

    /// Total energy cost of a trace over `[start, end)`.
    ///
    /// Integrates hour by hour so rate boundaries are respected exactly.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn energy_cost(&self, trace: &LoadTrace, start: SimTime, end: SimTime) -> f64 {
        assert!(end > start, "empty interval");
        let mut cost = 0.0;
        let mut cursor = start;
        while cursor < end {
            let next_hour = cursor.ceil_to(SimDuration::from_hours(1));
            let segment_end = if next_hour == cursor {
                (cursor + SimDuration::from_hours(1)).min(end)
            } else {
                next_hour.min(end)
            };
            cost += trace.energy_kwh(cursor, segment_end) * self.rate_at(cursor);
            cursor = segment_end;
        }
        cost
    }
}

/// Peak-demand charge: the billing-period fee for the highest demand
/// reached, `rate_per_kw × peak(trace)`.
///
/// # Panics
///
/// Panics if `end <= start` or the rate is negative.
pub fn demand_charge(trace: &LoadTrace, start: SimTime, end: SimTime, rate_per_kw: f64) -> f64 {
    assert!(rate_per_kw >= 0.0, "rate must be non-negative");
    trace.peak(start, end).max(0.0) * rate_per_kw
}

/// A complete residential billing scheme: time-of-use energy charges plus
/// a peak-demand charge — the money view of a load shape, and the price
/// component of a feeder coordination signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Billing {
    /// Energy price schedule, per kWh by hour of day.
    pub tariff: TimeOfUseTariff,
    /// Billing-period demand charge, currency units per kW of peak.
    pub demand_rate_per_kw: f64,
}

impl Billing {
    /// Creates a billing scheme.
    ///
    /// # Panics
    ///
    /// Panics if `demand_rate_per_kw` is negative or non-finite.
    pub fn new(tariff: TimeOfUseTariff, demand_rate_per_kw: f64) -> Self {
        assert!(
            demand_rate_per_kw.is_finite() && demand_rate_per_kw >= 0.0,
            "demand rate must be finite and non-negative"
        );
        Billing {
            tariff,
            demand_rate_per_kw,
        }
    }

    /// The typical residential scheme:
    /// [`TimeOfUseTariff::typical_residential`] energy rates plus a
    /// 10/kW demand charge.
    pub fn typical_residential() -> Self {
        Billing::new(TimeOfUseTariff::typical_residential(), 10.0)
    }

    /// Prices a load trace over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn cost(&self, trace: &LoadTrace, start: SimTime, end: SimTime) -> CostBreakdown {
        CostBreakdown {
            energy_cost: self.tariff.energy_cost(trace, start, end),
            demand_charge: demand_charge(trace, start, end, self.demand_rate_per_kw),
        }
    }

    /// Prices a fixed-interval sample series starting at time zero — the
    /// shape feeder-level aggregates come in, where no exact step trace
    /// exists. The series is read the way this repository samples
    /// (`0..=duration` **inclusive**): each sample holds for one interval
    /// except the last, which marks the end instant and is billed no
    /// energy (it still counts toward the demand peak). A series of
    /// `N + 1` samples therefore prices exactly `N` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn cost_of_samples(&self, interval: SimDuration, samples: &[f64]) -> CostBreakdown {
        assert!(!interval.is_zero(), "sample interval must be positive");
        let hours = interval.as_hours_f64();
        let billed = samples.len().saturating_sub(1);
        let mut energy_cost = 0.0;
        for (k, &kw) in samples.iter().take(billed).enumerate() {
            let at = SimTime::ZERO + interval * k as u64;
            energy_cost += kw * hours * self.tariff.rate_at(at);
        }
        let peak = samples.iter().copied().fold(0.0f64, f64::max);
        CostBreakdown {
            energy_cost,
            demand_charge: peak * self.demand_rate_per_kw,
        }
    }
}

/// The priced components of one load shape under a [`Billing`] scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Time-of-use energy charges, currency units.
    pub energy_cost: f64,
    /// Peak-demand charge, currency units.
    pub demand_charge: f64,
}

impl CostBreakdown {
    /// Energy plus demand charges.
    pub fn total(&self) -> f64 {
        self.energy_cost + self.demand_charge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_trace(kw: f64) -> LoadTrace {
        let mut t = LoadTrace::new();
        t.record(SimTime::ZERO, kw);
        t
    }

    #[test]
    fn flat_tariff_prices_energy() {
        let tariff = TimeOfUseTariff::flat(0.20);
        let trace = constant_trace(2.0);
        // 2 kW for 5 h = 10 kWh at 0.20 = 2.0.
        let cost = tariff.energy_cost(&trace, SimTime::ZERO, SimTime::from_hours(5));
        assert!((cost - 2.0).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn tou_rates_wrap_daily() {
        let tariff = TimeOfUseTariff::typical_residential();
        assert_eq!(tariff.rate_at(SimTime::from_hours(18)), 0.32);
        assert_eq!(tariff.rate_at(SimTime::from_hours(2)), 0.10);
        assert_eq!(tariff.rate_at(SimTime::from_hours(26)), 0.10);
        assert_eq!(tariff.rate_at(SimTime::from_hours(12)), 0.18);
    }

    #[test]
    fn tou_integration_respects_boundaries() {
        // 1 kW from 16:30 to 17:30: half an hour at 0.18, half at 0.32.
        let mut trace = LoadTrace::new();
        trace.record(SimTime::from_secs(16 * 3600 + 1800), 1.0);
        trace.record(SimTime::from_secs(17 * 3600 + 1800), 0.0);
        let tariff = TimeOfUseTariff::typical_residential();
        let cost = tariff.energy_cost(&trace, SimTime::ZERO, SimTime::from_hours(24));
        assert!(
            (cost - (0.5 * 0.18 + 0.5 * 0.32)).abs() < 1e-9,
            "cost {cost}"
        );
    }

    #[test]
    fn mid_hour_start_priced_correctly() {
        // Pricing an interval that starts mid-hour must not skip ahead.
        let tariff = TimeOfUseTariff::flat(1.0);
        let trace = constant_trace(1.0);
        let start = SimTime::from_secs(1800);
        let end = SimTime::from_secs(3 * 3600);
        let cost = tariff.energy_cost(&trace, start, end);
        assert!((cost - 2.5).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn demand_charge_scales_with_peak() {
        let mut trace = LoadTrace::new();
        trace.record(SimTime::ZERO, 3.0);
        trace.record(SimTime::from_hours(1), 8.0);
        trace.record(SimTime::from_hours(2), 1.0);
        let fee = demand_charge(&trace, SimTime::ZERO, SimTime::from_hours(3), 12.0);
        assert!((fee - 96.0).abs() < 1e-9, "fee {fee}");
    }

    #[test]
    fn billing_combines_energy_and_demand() {
        let billing = Billing::new(TimeOfUseTariff::flat(0.20), 12.0);
        let trace = constant_trace(2.0);
        let cost = billing.cost(&trace, SimTime::ZERO, SimTime::from_hours(5));
        // 10 kWh at 0.20 = 2.0 energy; 2 kW peak × 12 = 24 demand.
        assert!((cost.energy_cost - 2.0).abs() < 1e-9);
        assert!((cost.demand_charge - 24.0).abs() < 1e-9);
        assert!((cost.total() - 26.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_cost_matches_exact_on_aligned_steps() {
        // A trace whose steps align with the sampling grid prices the same
        // whether the exact trace or its inclusive 0..=end samples are
        // billed (the endpoint sample is an instant, not an interval).
        let billing = Billing::typical_residential();
        let mut trace = LoadTrace::new();
        trace.record(SimTime::ZERO, 1.0);
        trace.record(SimTime::from_hours(2), 3.0);
        trace.record(SimTime::from_hours(4), 0.0);
        let exact = billing.cost(&trace, SimTime::ZERO, SimTime::from_hours(6));
        let interval = SimDuration::from_mins(1);
        let samples: Vec<f64> = (0..=6 * 60)
            .map(|m| trace.value_at(SimTime::from_mins(m)))
            .collect();
        let sampled = billing.cost_of_samples(interval, &samples);
        assert!((exact.energy_cost - sampled.energy_cost).abs() < 1e-9);
        assert!((exact.demand_charge - sampled.demand_charge).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_billing_rate_rejected() {
        Billing::new(TimeOfUseTariff::flat(0.1), -1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tariff_rejected() {
        TimeOfUseTariff::new({
            let mut r = [0.1; 24];
            r[3] = -0.1;
            r
        });
    }
}
