//! Load time series as a right-continuous step function.
//!
//! The total system load changes only when some device switches, so the
//! natural representation is a step function: a sorted list of
//! `(instant, value)` breakpoints where the value holds until the next
//! breakpoint. [`LoadTrace`] records load in **kilowatts** and supports both
//! exact time-weighted statistics and the fixed-interval sampling the
//! paper's figures use (per-minute).

use han_sim::time::{SimDuration, SimTime};

/// A step-function record of total load over time, in kilowatts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadTrace {
    /// Breakpoints, strictly increasing in time.
    points: Vec<(SimTime, f64)>,
}

impl LoadTrace {
    /// Creates an empty trace (value 0 until the first breakpoint).
    pub fn new() -> Self {
        LoadTrace { points: Vec::new() }
    }

    /// Records the load `kw` holding from `at` onwards.
    ///
    /// Appending at the same instant as the last breakpoint overwrites it
    /// (the final state at an instant wins, matching event-driven updates).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last breakpoint or `kw` is not finite.
    pub fn record(&mut self, at: SimTime, kw: f64) {
        assert!(kw.is_finite(), "load must be finite");
        match self.points.last_mut() {
            Some((last, value)) if *last == at => {
                *value = kw;
            }
            Some((last, _)) => {
                assert!(at > *last, "breakpoints must be non-decreasing");
                self.points.push((at, kw));
            }
            None => self.points.push((at, kw)),
        }
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace has no breakpoints.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw breakpoints.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The load at instant `t` (0 before the first breakpoint).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|(bt, _)| bt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Samples the trace every `interval` from `start` to `end` inclusive,
    /// the way the paper's per-minute plots are drawn.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `end < start`.
    pub fn sample(&self, start: SimTime, end: SimTime, interval: SimDuration) -> Vec<f64> {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        assert!(end >= start, "end must not precede start");
        let mut out = Vec::new();
        let mut t = start;
        loop {
            out.push(self.value_at(t));
            if t >= end {
                break;
            }
            t = (t + interval).min(end);
        }
        out
    }

    /// Exact time-weighted mean load over `[start, end)`, in kW.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> f64 {
        self.fold_segments(start, end, 0.0, |acc, value, dur| {
            acc + value * dur.as_secs_f64()
        }) / (end - start).as_secs_f64()
    }

    /// Exact time-weighted standard deviation over `[start, end)`, in kW.
    pub fn time_weighted_std(&self, start: SimTime, end: SimTime) -> f64 {
        let mean = self.time_weighted_mean(start, end);
        let var = self.fold_segments(start, end, 0.0, |acc, value, dur| {
            acc + (value - mean).powi(2) * dur.as_secs_f64()
        }) / (end - start).as_secs_f64();
        var.max(0.0).sqrt()
    }

    /// Peak load over `[start, end)`, in kW.
    pub fn peak(&self, start: SimTime, end: SimTime) -> f64 {
        self.fold_segments(start, end, f64::NEG_INFINITY, |acc, value, _| {
            acc.max(value)
        })
    }

    /// Energy delivered over `[start, end)`, in kWh.
    pub fn energy_kwh(&self, start: SimTime, end: SimTime) -> f64 {
        self.fold_segments(start, end, 0.0, |acc, value, dur| {
            acc + value * dur.as_hours_f64()
        })
    }

    /// Folds over the constant segments of the step function intersected
    /// with `[start, end)`.
    fn fold_segments<A>(
        &self,
        start: SimTime,
        end: SimTime,
        init: A,
        mut f: impl FnMut(A, f64, SimDuration) -> A,
    ) -> A {
        assert!(end > start, "empty interval");
        let mut acc = init;
        let mut cursor = start;
        let mut value = self.value_at(start);
        // Index of first breakpoint strictly after `start`.
        let mut idx = match self.points.binary_search_by(|(bt, _)| bt.cmp(&start)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        while cursor < end {
            let next = self
                .points
                .get(idx)
                .map(|&(bt, _)| bt)
                .filter(|&bt| bt < end)
                .unwrap_or(end);
            if next > cursor {
                acc = f(acc, value, next - cursor);
            }
            if next == end {
                break;
            }
            value = self.points[idx].1;
            cursor = next;
            idx += 1;
        }
        acc
    }
}

impl LoadTrace {
    /// Builds a trace from overlapping rectangular pulses
    /// `(start, duration, kw)` — the natural shape of Type-1 (instant)
    /// appliance activity: a hair-dryer pulse, a TV session, a lighting
    /// block. Overlaps sum.
    ///
    /// # Examples
    ///
    /// ```
    /// use han_metrics::timeseries::LoadTrace;
    /// use han_sim::time::{SimDuration, SimTime};
    ///
    /// let tv = (SimTime::from_mins(10), SimDuration::from_mins(30), 0.12);
    /// let dryer = (SimTime::from_mins(20), SimDuration::from_mins(5), 1.2);
    /// let background = LoadTrace::from_pulses([tv, dryer]);
    /// assert!((background.value_at(SimTime::from_mins(22)) - 1.32).abs() < 1e-12);
    /// ```
    pub fn from_pulses(pulses: impl IntoIterator<Item = (SimTime, SimDuration, f64)>) -> Self {
        // Sweep line over +kw / −kw edge events.
        let mut edges: Vec<(SimTime, f64)> = Vec::new();
        for (start, duration, kw) in pulses {
            assert!(kw.is_finite(), "pulse power must be finite");
            if duration.is_zero() || kw == 0.0 {
                continue;
            }
            edges.push((start, kw));
            edges.push((start.saturating_add(duration), -kw));
        }
        edges.sort_by_key(|&(t, _)| t);
        let mut trace = LoadTrace::new();
        let mut level = 0.0;
        let mut i = 0;
        while i < edges.len() {
            let t = edges[i].0;
            while i < edges.len() && edges[i].0 == t {
                level += edges[i].1;
                i += 1;
            }
            // Clamp float dust at pulse ends.
            if level.abs() < 1e-12 {
                level = 0.0;
            }
            trace.record(t, level);
        }
        trace
    }
}

impl FromIterator<(SimTime, f64)> for LoadTrace {
    fn from_iter<T: IntoIterator<Item = (SimTime, f64)>>(iter: T) -> Self {
        let mut trace = LoadTrace::new();
        for (t, v) in iter {
            trace.record(t, v);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    fn square_wave() -> LoadTrace {
        // 0 kW on [0,10), 4 kW on [10,20), 0 kW from 20.
        [(t(0), 0.0), (t(10), 4.0), (t(20), 0.0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn value_lookup() {
        let tr = square_wave();
        assert_eq!(tr.value_at(SimTime::ZERO), 0.0);
        assert_eq!(tr.value_at(t(10)), 4.0);
        assert_eq!(tr.value_at(t(15)), 4.0);
        assert_eq!(tr.value_at(t(20)), 0.0);
        assert_eq!(tr.value_at(t(99)), 0.0);
    }

    #[test]
    fn value_before_first_breakpoint_is_zero() {
        let tr: LoadTrace = [(t(5), 2.0)].into_iter().collect();
        assert_eq!(tr.value_at(t(0)), 0.0);
        assert_eq!(tr.value_at(t(4)), 0.0);
        assert_eq!(tr.value_at(t(5)), 2.0);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut tr = LoadTrace::new();
        tr.record(t(1), 1.0);
        tr.record(t(1), 3.0);
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.value_at(t(1)), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn backwards_record_panics() {
        let mut tr = LoadTrace::new();
        tr.record(t(5), 1.0);
        tr.record(t(4), 1.0);
    }

    #[test]
    fn mean_of_square_wave() {
        let tr = square_wave();
        // 4 kW for a third of [0,30): mean 4/3.
        let mean = tr.time_weighted_mean(t(0), t(30));
        assert!((mean - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn std_of_square_wave() {
        let tr = square_wave();
        // Two-level distribution: p=1/3 at 4, else 0.
        // var = E[x^2] - mean^2 = 16/3 - 16/9 = 32/9.
        let std = tr.time_weighted_std(t(0), t(30));
        assert!((std - (32.0f64 / 9.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn peak_and_energy() {
        let tr = square_wave();
        assert_eq!(tr.peak(t(0), t(30)), 4.0);
        assert_eq!(tr.peak(t(0), t(10)), 0.0);
        // 4 kW × (10/60) h = 2/3 kWh.
        assert!((tr.energy_kwh(t(0), t(30)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interval_intersection() {
        let tr = square_wave();
        // [15, 25): 4 kW for 5 min then 0 for 5 min.
        let mean = tr.time_weighted_mean(t(15), t(25));
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_steps() {
        let tr = square_wave();
        let s = tr.sample(t(0), t(30), SimDuration::from_mins(5));
        assert_eq!(s, vec![0.0, 0.0, 4.0, 4.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn sampling_clamps_last_point() {
        let tr = square_wave();
        let s = tr.sample(t(0), t(12), SimDuration::from_mins(5));
        // t = 0, 5, 10, 12.
        assert_eq!(s, vec![0.0, 0.0, 4.0, 4.0]);
    }

    #[test]
    fn empty_trace_stats() {
        let tr = LoadTrace::new();
        assert_eq!(tr.time_weighted_mean(t(0), t(10)), 0.0);
        assert_eq!(tr.peak(t(0), t(10)), 0.0);
        assert_eq!(tr.energy_kwh(t(0), t(10)), 0.0);
        assert!(tr.is_empty());
    }

    #[test]
    fn pulses_overlap_and_sum() {
        let tr = LoadTrace::from_pulses([
            (t(0), SimDuration::from_mins(10), 1.0),
            (t(5), SimDuration::from_mins(10), 2.0),
        ]);
        assert_eq!(tr.value_at(t(2)), 1.0);
        assert_eq!(tr.value_at(t(7)), 3.0);
        assert_eq!(tr.value_at(t(12)), 2.0);
        assert_eq!(tr.value_at(t(20)), 0.0);
        assert_eq!(tr.peak(t(0), t(30)), 3.0);
        // Energy: 1 kW x 10 min + 2 kW x 10 min = 0.5 kWh.
        assert!((tr.energy_kwh(t(0), t(30)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simultaneous_pulse_edges_merge() {
        let tr = LoadTrace::from_pulses([
            (t(0), SimDuration::from_mins(10), 1.5),
            (t(10), SimDuration::from_mins(10), 1.5),
        ]);
        // The end of one and start of the next coincide: flat 1.5.
        assert_eq!(tr.value_at(t(10)), 1.5);
        assert_eq!(tr.peak(t(0), t(25)), 1.5);
    }

    #[test]
    fn empty_and_zero_pulses_ignored() {
        let tr = LoadTrace::from_pulses([
            (t(0), SimDuration::ZERO, 5.0),
            (t(1), SimDuration::from_mins(1), 0.0),
        ]);
        assert!(tr.is_empty());
    }
}
