//! Summary statistics over sampled load series.
//!
//! The paper reports peak load (Fig. 2b), average load with its standard
//! deviation (Fig. 2c), and in-text reduction percentages. [`Summary`]
//! computes those from a sampled series; [`reduction_percent`] expresses the
//! baseline-vs-coordinated comparisons.

use std::fmt;

/// Descriptive statistics of one sampled series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Maximum value.
    pub peak: f64,
    /// Minimum value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty series");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "series contains non-finite samples"
        );
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        let peak = samples.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let min = samples.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        Summary {
            count,
            peak,
            min,
            mean,
            std_dev: var.max(0.0).sqrt(),
        }
    }

    /// Coefficient of variation (std-dev / mean); 0 for a zero mean.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} peak={:.2} mean={:.2} ± {:.2} (min {:.2})",
            self.count, self.peak, self.mean, self.std_dev, self.min
        )
    }
}

/// Percentile of a series by linear interpolation (p in `[0, 100]`).
///
/// # Panics
///
/// Panics if `samples` is empty or `p` is outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(
        !samples.is_empty(),
        "cannot take percentile of empty series"
    );
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Largest increase between consecutive samples — the "sudden rise" the
/// paper's coordination is designed to avoid.
///
/// Returns 0 for series shorter than 2.
pub fn max_step_up(samples: &[f64]) -> f64 {
    samples.windows(2).map(|w| w[1] - w[0]).fold(0.0, f64::max)
}

/// Reduction of `candidate` relative to `baseline`, in percent.
///
/// Positive means the candidate is lower (better for peak/variation).
/// Returns 0 when the baseline is 0.
pub fn reduction_percent(baseline: f64, candidate: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - candidate) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.peak, 4.0);
        assert_eq!(s.min, 1.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Population std of {1,2,3,4} = sqrt(1.25).
        assert!((s.std_dev - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_constant_series() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.peak, 5.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_nan_panics() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn percentiles() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn step_up_detection() {
        assert_eq!(max_step_up(&[1.0, 4.0, 2.0, 5.0]), 3.0);
        assert_eq!(max_step_up(&[5.0, 4.0, 3.0]), 0.0);
        assert_eq!(max_step_up(&[1.0]), 0.0);
    }

    #[test]
    fn reduction_math() {
        assert!((reduction_percent(10.0, 5.0) - 50.0).abs() < 1e-12);
        assert!((reduction_percent(10.0, 12.0) + 20.0).abs() < 1e-12);
        assert_eq!(reduction_percent(0.0, 5.0), 0.0);
    }

    #[test]
    fn display_nonempty() {
        let s = Summary::of(&[1.0, 2.0]);
        assert!(s.to_string().contains("peak"));
    }
}
