//! # han-metrics — load traces, statistics and experiment reports
//!
//! The measurement half of the reproduction:
//!
//! * [`timeseries`] — [`timeseries::LoadTrace`], a step-function record of
//!   total load with exact time-weighted statistics and the per-minute
//!   sampling used by the paper's figures;
//! * [`stats`] — [`stats::Summary`] (peak / mean / std-dev, Fig. 2b–c),
//!   percentiles, ramp detection and reduction percentages;
//! * [`report`] — comparison tables and CSV export shared by all
//!   figure-reproduction harnesses;
//! * [`resilience`] — [`resilience::ResilienceStats`], availability and
//!   recovery-time accounting for fault-injected runs;
//! * [`tariff`] — time-of-use pricing and peak-demand charges, the money
//!   view of a load shape.
//!
//! Loads are carried as `f64` **kilowatts** throughout, matching the
//! paper's axes.
//!
//! # Examples
//!
//! ```
//! use han_metrics::timeseries::LoadTrace;
//! use han_metrics::stats::Summary;
//! use han_sim::time::{SimDuration, SimTime};
//!
//! let mut trace = LoadTrace::new();
//! trace.record(SimTime::ZERO, 0.0);
//! trace.record(SimTime::from_mins(10), 4.0);
//! trace.record(SimTime::from_mins(20), 0.0);
//!
//! let samples = trace.sample(SimTime::ZERO, SimTime::from_mins(30), SimDuration::from_mins(1));
//! let summary = Summary::of(&samples);
//! assert_eq!(summary.peak, 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod resilience;
pub mod stats;
pub mod tariff;
pub mod timeseries;

pub use report::{ComparisonReport, ComparisonRow};
pub use resilience::ResilienceStats;
pub use stats::Summary;
pub use tariff::{demand_charge, Billing, CostBreakdown, TimeOfUseTariff};
pub use timeseries::LoadTrace;
