//! Resilience accounting for fault-injected runs.
//!
//! When a simulation runs under a fault plan (node churn, communication-
//! plane outages), the interesting questions shift from *how good is the
//! schedule* to *how gracefully does the fleet degrade and how fast does
//! it recover*. [`ResilienceStats`] is the ledger for those questions:
//! node-round availability, per-recovery re-agreement times, and deadline
//! misses attributed to the fault that was active when they happened.
//!
//! The struct is a passive accumulator — the simulation driver owns the
//! fault timeline and calls the recording methods; this crate only does
//! the arithmetic, so the metrics layer stays independent of the
//! simulator.
//!
//! # Examples
//!
//! ```
//! use han_metrics::resilience::ResilienceStats;
//!
//! let mut r = ResilienceStats::default();
//! r.record_round(2, true); // 2 nodes down, CP outage in force
//! r.record_round(1, false);
//! r.record_recovery(3); // 3 rounds from NodeUp to re-agreement
//! assert_eq!(r.down_node_rounds, 3);
//! assert_eq!(r.outage_rounds, 1);
//! assert_eq!(r.availability(2, 4), 1.0 - 3.0 / 8.0);
//! assert_eq!(r.mean_recovery_rounds(), Some(3.0));
//! ```

/// Accumulated resilience metrics of one simulation run.
///
/// All counters are in units of *rounds* (the communication-plane round is
/// the simulation's clock tick). An empty/default value means "no faults
/// observed" and is what fault-free runs report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceStats {
    /// Sum over rounds of the number of nodes down in that round.
    /// `rounds × nodes − down_node_rounds` is the served node-round count.
    pub down_node_rounds: u64,
    /// Rounds during which a communication-plane outage was in force.
    pub outage_rounds: u64,
    /// Rounds from each `NodeUp` event until the fleet next reached
    /// plan agreement (all nodes computing identical schedules), one entry
    /// per completed recovery, in event order.
    pub recoveries: Vec<u64>,
    /// Deadline misses that occurred in a round with at least one node
    /// down.
    pub misses_while_down: u64,
    /// Deadline misses that occurred in a round with a CP outage in force.
    pub misses_during_outage: u64,
}

impl ResilienceStats {
    /// Whether any fault activity was recorded at all.
    pub fn is_quiet(&self) -> bool {
        *self == ResilienceStats::default()
    }

    /// Folds one round's fault exposure into the ledger.
    pub fn record_round(&mut self, nodes_down: usize, outage: bool) {
        self.down_node_rounds += nodes_down as u64;
        if outage {
            self.outage_rounds += 1;
        }
    }

    /// Records a completed recovery: `rounds` elapsed between a `NodeUp`
    /// and the first subsequent round of full plan agreement.
    pub fn record_recovery(&mut self, rounds: u64) {
        self.recoveries.push(rounds);
    }

    /// Attributes deadline misses observed this round to whichever fault
    /// classes were active when they happened.
    pub fn attribute_misses(&mut self, misses: u64, any_down: bool, outage: bool) {
        if misses == 0 {
            return;
        }
        if any_down {
            self.misses_while_down += misses;
        }
        if outage {
            self.misses_during_outage += misses;
        }
    }

    /// Node-round availability: the fraction of `(node, round)` pairs in
    /// which the node was up. 1.0 for fault-free runs (and for empty
    /// runs, where there is nothing to be unavailable).
    pub fn availability(&self, rounds: u64, nodes: usize) -> f64 {
        let total = rounds.saturating_mul(nodes as u64);
        if total == 0 {
            return 1.0;
        }
        1.0 - self.down_node_rounds as f64 / total as f64
    }

    /// Mean rounds-to-re-agreement across completed recoveries, `None` if
    /// no recovery completed.
    pub fn mean_recovery_rounds(&self) -> Option<f64> {
        if self.recoveries.is_empty() {
            return None;
        }
        Some(self.recoveries.iter().sum::<u64>() as f64 / self.recoveries.len() as f64)
    }

    /// The slowest completed recovery, `None` if no recovery completed.
    pub fn worst_recovery_rounds(&self) -> Option<u64> {
        self.recoveries.iter().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_fully_available() {
        let r = ResilienceStats::default();
        assert!(r.is_quiet());
        assert_eq!(r.availability(100, 8), 1.0);
        assert_eq!(r.availability(0, 0), 1.0);
        assert_eq!(r.mean_recovery_rounds(), None);
        assert_eq!(r.worst_recovery_rounds(), None);
    }

    #[test]
    fn round_exposure_accumulates() {
        let mut r = ResilienceStats::default();
        r.record_round(0, false);
        r.record_round(3, true);
        r.record_round(1, true);
        assert_eq!(r.down_node_rounds, 4);
        assert_eq!(r.outage_rounds, 2);
        assert!(!r.is_quiet());
        // 3 rounds × 4 nodes = 12 node-rounds, 4 of them down.
        assert!((r.availability(3, 4) - (1.0 - 4.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn recovery_statistics() {
        let mut r = ResilienceStats::default();
        r.record_recovery(2);
        r.record_recovery(6);
        r.record_recovery(4);
        assert_eq!(r.mean_recovery_rounds(), Some(4.0));
        assert_eq!(r.worst_recovery_rounds(), Some(6));
        assert_eq!(r.recoveries, vec![2, 6, 4]);
    }

    #[test]
    fn miss_attribution_is_per_active_fault_class() {
        let mut r = ResilienceStats::default();
        r.attribute_misses(2, true, false);
        r.attribute_misses(1, true, true);
        r.attribute_misses(5, false, false); // no fault active: unattributed
        r.attribute_misses(0, true, true); // nothing to attribute
        assert_eq!(r.misses_while_down, 3);
        assert_eq!(r.misses_during_outage, 1);
    }
}
