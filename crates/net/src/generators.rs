//! Synthetic topology generators.
//!
//! These produce the standard shapes used in the test suite and benchmarks:
//! lines (worst-case hop count), grids (typical building coverage), rings,
//! stars (centralized baseline layout) and random geometric graphs.

use crate::topology::{NodeId, Position, Topology};
use han_radio::channel::ChannelModel;
use han_radio::units::Dbm;
use han_sim::rng::DetRng;

/// Default transmit power for generated topologies.
pub const DEFAULT_TX_POWER: Dbm = Dbm(0.0);

/// A line of `n` nodes spaced `spacing_m` apart.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn line(n: usize, spacing_m: f64, channel: ChannelModel) -> Topology {
    assert!(n > 0, "need at least one node");
    let positions = (0..n)
        .map(|i| Position::new(i as f64 * spacing_m, 0.0))
        .collect();
    Topology::new(positions, channel, DEFAULT_TX_POWER)
}

/// A `rows × cols` grid with `spacing_m` between adjacent nodes.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize, spacing_m: f64, channel: ChannelModel) -> Topology {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut positions = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            positions.push(Position::new(c as f64 * spacing_m, r as f64 * spacing_m));
        }
    }
    Topology::new(positions, channel, DEFAULT_TX_POWER)
}

/// A ring of `n` nodes with `radius_m`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn ring(n: usize, radius_m: f64, channel: ChannelModel) -> Topology {
    assert!(n > 0, "need at least one node");
    let positions = (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            Position::new(radius_m * theta.cos(), radius_m * theta.sin())
        })
        .collect();
    Topology::new(positions, channel, DEFAULT_TX_POWER)
}

/// A star: node 0 at the centre, `n - 1` leaves at `radius_m`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn star(n: usize, radius_m: f64, channel: ChannelModel) -> Topology {
    assert!(n > 0, "need at least one node");
    let mut positions = vec![Position::new(0.0, 0.0)];
    for i in 1..n {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / (n - 1).max(1) as f64;
        positions.push(Position::new(
            radius_m * theta.cos(),
            radius_m * theta.sin(),
        ));
    }
    Topology::new(positions, channel, DEFAULT_TX_POWER)
}

/// `n` nodes placed uniformly at random in a `width_m × height_m` rectangle,
/// rejecting placements closer than `min_separation_m` to an existing node.
///
/// Placement is deterministic in `seed`. If the rejection sampling cannot
/// place a node within 10,000 attempts the separation constraint is relaxed
/// for that node (dense configurations stay feasible).
///
/// # Panics
///
/// Panics if `n` is zero or the area is non-positive.
pub fn random_geometric(
    n: usize,
    width_m: f64,
    height_m: f64,
    min_separation_m: f64,
    channel: ChannelModel,
    seed: u64,
) -> Topology {
    assert!(n > 0, "need at least one node");
    assert!(width_m > 0.0 && height_m > 0.0, "area must be positive");
    let mut rng = DetRng::for_stream(seed, "topology-placement");
    let mut positions: Vec<Position> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut placed = None;
        for _attempt in 0..10_000 {
            let p = Position::new(
                rng.gen_range_f64(0.0, width_m),
                rng.gen_range_f64(0.0, height_m),
            );
            if positions
                .iter()
                .all(|q| q.distance_to(p) >= min_separation_m)
            {
                placed = Some(p);
                break;
            }
        }
        let p = placed.unwrap_or_else(|| {
            Position::new(
                rng.gen_range_f64(0.0, width_m),
                rng.gen_range_f64(0.0, height_m),
            )
        });
        positions.push(p);
    }
    Topology::new(positions, channel, DEFAULT_TX_POWER)
}

/// Returns the first node id, a conventional flood initiator.
pub fn default_initiator() -> NodeId {
    NodeId(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(range: f64) -> ChannelModel {
        ChannelModel::UnitDisk { range_m: range }
    }

    #[test]
    fn line_shape() {
        let t = line(5, 10.0, disk(15.0));
        assert_eq!(t.len(), 5);
        assert_eq!(t.diameter(0.5), Some(4));
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 4, 10.0, disk(15.0));
        assert_eq!(t.len(), 12);
        assert!(t.is_connected(0.5));
        // Diagonal neighbors are sqrt(200) ≈ 14.1 m, inside the 15 m disk,
        // so the diameter is the Chebyshev distance.
        assert_eq!(t.diameter(0.5), Some(3));
    }

    #[test]
    fn ring_is_connected() {
        let t = ring(12, 20.0, disk(15.0));
        // Adjacent nodes on a 20 m-radius 12-ring are ~10.35 m apart.
        assert!(t.is_connected(0.5));
        assert_eq!(t.diameter(0.5), Some(6));
    }

    #[test]
    fn star_single_hop_via_center() {
        let t = star(7, 10.0, disk(12.0));
        assert!(t.is_connected(0.5));
        // Leaves 10 m from centre; adjacent leaves are 10 m apart
        // (hexagon side = radius), so some leaf pairs connect directly,
        // but the diameter never exceeds 2 (leaf–centre–leaf).
        assert_eq!(t.diameter(0.5), Some(2));
    }

    #[test]
    fn random_geometric_deterministic_in_seed() {
        let a = random_geometric(20, 50.0, 30.0, 2.0, disk(18.0), 7);
        let b = random_geometric(20, 50.0, 30.0, 2.0, disk(18.0), 7);
        for id in a.node_ids() {
            assert_eq!(a.position(id), b.position(id));
        }
        let c = random_geometric(20, 50.0, 30.0, 2.0, disk(18.0), 8);
        let same = a
            .node_ids()
            .filter(|&id| a.position(id) == c.position(id))
            .count();
        assert!(same < 20, "different seed should move nodes");
    }

    #[test]
    fn random_geometric_respects_bounds_and_separation() {
        let t = random_geometric(30, 40.0, 20.0, 2.0, disk(18.0), 3);
        for a in t.node_ids() {
            let p = t.position(a);
            assert!((0.0..=40.0).contains(&p.x) && (0.0..=20.0).contains(&p.y));
            for b in t.node_ids() {
                if a < b {
                    assert!(t.distance(a, b) >= 2.0 - 1e-9);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        line(0, 10.0, disk(15.0));
    }
}
