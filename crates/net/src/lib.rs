//! # han-net — network topologies for the smart-HAN simulation
//!
//! Node placement and link-quality derivation for the multi-hop IoT network
//! formed by the paper's Device Interfaces:
//!
//! * [`topology`] — [`topology::NodeId`], [`topology::Position`] and
//!   [`topology::Topology`] (RSSI / PRR matrices, neighbors, hop counts,
//!   connectivity, diameter);
//! * [`generators`] — line / grid / ring / star / random-geometric layouts;
//! * [`flocklab`] — a 26-node office-floor layout reproducing the relevant
//!   properties of the FlockLab testbed used in the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use han_net::flocklab::flocklab26_deterministic;
//!
//! let t = flocklab26_deterministic();
//! assert!(t.is_connected(0.7));
//! assert!(t.diameter(0.7).unwrap() >= 2); // genuinely multi-hop
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flocklab;
pub mod generators;
pub mod topology;

pub use topology::{NodeId, Position, Topology};
