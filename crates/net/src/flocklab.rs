//! A FlockLab-like 26-node testbed layout.
//!
//! The paper evaluates on the public FlockLab 2 testbed (Trüb et al.,
//! CPS-IoTBench 2020): ~26 observer nodes spread across one floor of an
//! office building at ETH Zürich. The exact survey coordinates are not
//! published with the paper, so we reproduce the *relevant* properties:
//! 26 nodes over a ~60 m × 30 m office floor, multi-hop at 0 dBm indoor
//! propagation (2–4 hops diameter depending on shadowing), with a mixture of
//! dense clusters (adjacent offices) and longer corridor links.
//!
//! The layout is fixed; the channel seed varies per experiment, which is how
//! FlockLab runs differ from day to day.

use crate::topology::{Position, Topology};
use han_radio::channel::ChannelModel;
use han_radio::units::Dbm;

/// Number of nodes in the layout, matching the paper's experiment.
pub const FLOCKLAB_NODE_COUNT: usize = 26;

/// Node coordinates in metres on a ~60 m × 30 m office floor.
///
/// Clusters of offices along two corridors (y ≈ 5 and y ≈ 25) joined by a
/// stairwell area near x ≈ 30.
const COORDS: [(f64, f64); FLOCKLAB_NODE_COUNT] = [
    // south corridor, west wing
    (2.0, 4.0),
    (8.0, 2.5),
    (14.0, 5.0),
    (20.0, 3.0),
    (26.0, 5.5),
    // stairwell / lobby
    (31.0, 10.0),
    (29.0, 16.0),
    (33.0, 21.0),
    // north corridor, west wing
    (3.0, 26.0),
    (9.0, 28.0),
    (15.0, 25.5),
    (21.0, 27.0),
    (27.0, 25.0),
    // south corridor, east wing
    (36.0, 4.5),
    (42.0, 2.0),
    (48.0, 4.0),
    (54.0, 3.0),
    (58.0, 6.0),
    // north corridor, east wing
    (38.0, 27.5),
    (44.0, 26.0),
    (50.0, 28.0),
    (56.0, 26.5),
    // interior offices
    (12.0, 15.0),
    (22.0, 14.0),
    (44.0, 14.5),
    (52.0, 15.0),
];

/// Builds the 26-node FlockLab-like topology with log-normal shadowing
/// frozen from `channel_seed`.
///
/// # Examples
///
/// ```
/// let t = han_net::flocklab::flocklab26(1);
/// assert_eq!(t.len(), 26);
/// ```
pub fn flocklab26(channel_seed: u64) -> Topology {
    Topology::new(
        COORDS.iter().map(|&(x, y)| Position::new(x, y)).collect(),
        ChannelModel::indoor_office(channel_seed),
        Dbm(0.0),
    )
}

/// The deterministic (shadowing-free) variant, for tests that need exact
/// reproducibility of the link matrix.
pub fn flocklab26_deterministic() -> Topology {
    Topology::new(
        COORDS.iter().map(|&(x, y)| Position::new(x, y)).collect(),
        ChannelModel::indoor_office_no_shadowing(),
        Dbm(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    #[test]
    fn has_26_nodes() {
        assert_eq!(flocklab26(0).len(), FLOCKLAB_NODE_COUNT);
    }

    #[test]
    fn deterministic_variant_is_connected_and_multihop() {
        let t = flocklab26_deterministic();
        assert!(t.is_connected(0.7), "layout must be connected");
        let d = t.diameter(0.7).expect("connected");
        assert!(
            (2..=5).contains(&d),
            "expected a small multi-hop diameter, got {d}"
        );
    }

    #[test]
    fn typical_seeds_stay_connected() {
        // Shadowing redraws link budgets; the deployment must tolerate it.
        for seed in 0..10 {
            let t = flocklab26(seed);
            assert!(t.is_connected(0.5), "seed {seed} disconnected the floor");
        }
    }

    #[test]
    fn not_single_hop() {
        // The far corners must not hear each other directly: multi-hop is
        // essential for the protocol evaluation to be meaningful.
        let t = flocklab26_deterministic();
        let prr = t.link_prr(NodeId(0), NodeId(17), 64);
        assert!(prr < 0.1, "corner-to-corner link should be dead, prr={prr}");
    }

    #[test]
    fn every_node_has_a_neighbor() {
        let t = flocklab26_deterministic();
        for id in t.node_ids() {
            assert!(
                !t.neighbors(id, 0.7).is_empty(),
                "{id} has no usable neighbors"
            );
        }
    }
}
