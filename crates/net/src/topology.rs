//! Network topology: node placement plus a propagation model.
//!
//! A [`Topology`] combines node positions with a [`ChannelModel`] and a
//! transmit power, and derives everything the protocol layer needs: RSSI
//! between any two nodes, expected link reliability, neighbor sets, hop
//! counts and connectivity.

use han_radio::channel::{undirected_link_id, ChannelModel};
use han_radio::prr;
use han_radio::units::Dbm;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a network node (a Device Interface in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A 2-D node position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Default PRR above which a link counts as usable for neighbor/connectivity
/// queries.
pub const DEFAULT_LINK_PRR_THRESHOLD: f64 = 0.7;

/// Reference frame size (bytes on air) used for link classification.
pub const DEFAULT_LINK_FRAME_BYTES: usize = 64;

/// A set of placed nodes sharing one propagation environment.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Position>,
    channel: ChannelModel,
    tx_power: Dbm,
}

impl Topology {
    /// Creates a topology from node positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn new(positions: Vec<Position>, channel: ChannelModel, tx_power: Dbm) -> Self {
        assert!(!positions.is_empty(), "topology must contain nodes");
        Topology {
            positions,
            channel,
            tx_power,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always false: a topology holds at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates all node ids in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// Returns a node's position.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// The propagation model in use.
    pub fn channel(&self) -> &ChannelModel {
        &self.channel
    }

    /// The transmit power all nodes use.
    pub fn tx_power(&self) -> Dbm {
        self.tx_power
    }

    /// Distance in metres between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance_to(self.position(b))
    }

    /// Received signal strength at `to` for a transmission from `from`.
    ///
    /// Reciprocal: shadowing is frozen on the undirected link.
    pub fn rssi(&self, from: NodeId, to: NodeId) -> Dbm {
        self.channel.rssi(
            self.tx_power,
            self.distance(from, to),
            undirected_link_id(from.0, to.0),
        )
    }

    /// Expected packet reception rate on the link for a frame of
    /// `frame_bytes` bytes (no interference).
    pub fn link_prr(&self, from: NodeId, to: NodeId, frame_bytes: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        prr::prr_no_interference(self.rssi(from, to), frame_bytes)
    }

    /// Nodes whose link PRR from `node` meets `min_prr` at the reference
    /// frame size.
    pub fn neighbors(&self, node: NodeId, min_prr: f64) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&other| {
                other != node && self.link_prr(node, other, DEFAULT_LINK_FRAME_BYTES) >= min_prr
            })
            .collect()
    }

    /// Minimum hop counts from `source` over links with PRR ≥ `min_prr`.
    ///
    /// Unreachable nodes map to `None`.
    pub fn hop_counts(&self, source: NodeId, min_prr: f64) -> Vec<Option<u32>> {
        let n = self.len();
        let mut hops: Vec<Option<u32>> = vec![None; n];
        hops[source.index()] = Some(0);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let next_hop = hops[u.index()].expect("visited node lacks hop count") + 1;
            for v in self.neighbors(u, min_prr) {
                if hops[v.index()].is_none() {
                    hops[v.index()] = Some(next_hop);
                    queue.push_back(v);
                }
            }
        }
        hops
    }

    /// Whether every node can reach every other over links with
    /// PRR ≥ `min_prr`.
    pub fn is_connected(&self, min_prr: f64) -> bool {
        self.hop_counts(NodeId(0), min_prr)
            .iter()
            .all(|h| h.is_some())
    }

    /// Network diameter in hops over links with PRR ≥ `min_prr`, or `None`
    /// if the graph is disconnected.
    pub fn diameter(&self, min_prr: f64) -> Option<u32> {
        let mut max = 0;
        for source in self.node_ids() {
            for h in self.hop_counts(source, min_prr) {
                max = max.max(h?);
            }
        }
        Some(max)
    }

    /// Precomputes the full RSSI matrix (`matrix[from][to]`).
    ///
    /// Protocol simulations resolve thousands of slots per second of
    /// simulated time; caching the link budget avoids recomputing shadowing
    /// on every slot. The diagonal holds negative infinity (a node does not
    /// hear itself).
    pub fn rssi_matrix(&self) -> Vec<Vec<Dbm>> {
        let n = self.len();
        let mut m = vec![vec![Dbm(f64::NEG_INFINITY); n]; n];
        for a in self.node_ids() {
            for b in self.node_ids() {
                if a != b {
                    m[a.index()][b.index()] = self.rssi(a, b);
                }
            }
        }
        m
    }

    /// Average link PRR over all ordered pairs, at the reference frame size.
    pub fn mean_link_prr(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for a in self.node_ids() {
            for b in self.node_ids() {
                if a != b {
                    sum += self.link_prr(a, b, DEFAULT_LINK_FRAME_BYTES);
                }
            }
        }
        sum / (n * (n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        // 3 nodes, 10 m apart, unit disk range 15 m: a line graph.
        Topology::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(20.0, 0.0),
            ],
            ChannelModel::UnitDisk { range_m: 15.0 },
            Dbm(0.0),
        )
    }

    #[test]
    fn distances() {
        let t = line3();
        assert_eq!(t.distance(NodeId(0), NodeId(2)), 20.0);
        assert_eq!(t.distance(NodeId(1), NodeId(1)), 0.0);
    }

    #[test]
    fn unit_disk_neighbors() {
        let t = line3();
        assert_eq!(t.neighbors(NodeId(0), 0.5), vec![NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(1), 0.5), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn hop_counts_on_line() {
        let t = line3();
        let hops = t.hop_counts(NodeId(0), 0.5);
        assert_eq!(hops, vec![Some(0), Some(1), Some(2)]);
        assert!(t.is_connected(0.5));
        assert_eq!(t.diameter(0.5), Some(2));
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::new(
            vec![Position::new(0.0, 0.0), Position::new(100.0, 0.0)],
            ChannelModel::UnitDisk { range_m: 15.0 },
            Dbm(0.0),
        );
        assert!(!t.is_connected(0.5));
        assert_eq!(t.diameter(0.5), None);
        assert_eq!(t.hop_counts(NodeId(0), 0.5)[1], None);
    }

    #[test]
    fn self_link_prr_zero() {
        let t = line3();
        assert_eq!(t.link_prr(NodeId(1), NodeId(1), 64), 0.0);
    }

    #[test]
    fn rssi_reciprocal_with_shadowing() {
        let t = Topology::new(
            vec![Position::new(0.0, 0.0), Position::new(25.0, 0.0)],
            ChannelModel::indoor_office(99),
            Dbm(0.0),
        );
        assert_eq!(t.rssi(NodeId(0), NodeId(1)), t.rssi(NodeId(1), NodeId(0)));
    }

    #[test]
    fn close_indoor_link_is_reliable() {
        let t = Topology::new(
            vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
            ChannelModel::indoor_office_no_shadowing(),
            Dbm(0.0),
        );
        assert!(t.link_prr(NodeId(0), NodeId(1), 64) > 0.999);
    }

    #[test]
    fn mean_link_prr_between_zero_and_one() {
        let t = line3();
        let m = t.mean_link_prr();
        assert!((0.0..=1.0).contains(&m));
        // In the 15 m unit disk, 4 of 6 ordered pairs are connected.
        assert!((m - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "topology must contain nodes")]
    fn empty_topology_panics() {
        Topology::new(vec![], ChannelModel::UnitDisk { range_m: 1.0 }, Dbm(0.0));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }
}
