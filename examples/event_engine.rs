//! The event-driven simulation backend, differentially against the
//! synchronous round loop.
//!
//! Runs the paper scenario on both backends under all three
//! communication-plane fidelities, checks the determinism contract
//! (bit-identical schedule digests, divergence counts and load traces),
//! and shows the event taxonomy at work: 4 events per round under an
//! ideal CP (shared view row), one record-refresh event per node under
//! loss, and one additional typed event per MiniCast flood step under
//! the packet CP.
//!
//! Run with: `cargo run --release --example event_engine`

use smart_han::core::experiment::{run_strategy, run_strategy_on};
use smart_han::prelude::*;

fn main() -> Result<(), ScenarioError> {
    let scenario = Scenario {
        duration: SimDuration::from_mins(120),
        ..Scenario::paper(ArrivalRate::High, 42)
    };

    println!(
        "paper fleet, {} devices, 120 min, seed 42\n",
        scenario.device_count()
    );
    println!(
        "{:<22} {:>12} {:>14} {:>10}",
        "communication plane", "digest match", "events/round", "divergent"
    );

    for (name, cp) in [
        ("ideal", CpModel::Ideal),
        (
            "lossy-round p=0.3",
            CpModel::LossyRound {
                miss_probability: 0.3,
            },
        ),
        ("packet (FlockLab 26)", CpModel::paper_packet(42)),
    ] {
        let round = run_strategy(&scenario, Strategy::coordinated(), cp.clone())?;
        let event = run_strategy_on(&scenario, Strategy::coordinated(), cp, EngineKind::Event)?;
        // The determinism contract, checked end to end.
        assert_eq!(
            event.outcome.schedule_digest, round.outcome.schedule_digest,
            "{name}: the event backend must be schedule-digest-identical"
        );
        assert_eq!(event.outcome.trace, round.outcome.trace);
        assert_eq!(
            event.outcome.divergent_rounds,
            round.outcome.divergent_rounds
        );
        println!(
            "{:<22} {:>12} {:>14.1} {:>10}",
            name,
            "yes",
            event.outcome.events as f64 / event.outcome.rounds as f64,
            event.outcome.divergent_rounds,
        );
    }

    // A whole street on the event engine: `Neighborhood` threads the
    // backend through every home.
    let hood = Neighborhood::uniform("event street", &scenario, CpModel::Ideal, 4)?
        .on_engine(EngineKind::Event);
    let report = hood.run()?;
    println!(
        "\n4-home street on the event engine: feeder peak {:.1} -> {:.1} kW, \
         0 deadline misses = {}",
        report.feeder_uncoordinated.peak,
        report.feeder_coordinated.peak,
        report
            .homes
            .iter()
            .all(|h| h.comparison.coordinated.outcome.deadline_misses == 0),
    );
    Ok(())
}
