//! Full-stack run on the FlockLab-like testbed: packet-level MiniCast.
//!
//! Everything the paper deployed, end to end: 26 Device Interfaces on an
//! office-floor topology, every 2 s a synchronous-transmission all-to-all
//! round (sync beacon + 26 aggregated Glossy floods, capture effect and
//! all), and the collaborative scheduler running on each node's own —
//! possibly incomplete — view.
//!
//! Run with: `cargo run --release --example testbed_flocklab`

use smart_han::prelude::*;

fn main() {
    let duration = SimDuration::from_mins(60);
    let requests = PoissonArrivals::new(30.0, 26).generate(duration, 5);
    println!(
        "60 min on the 26-node testbed, {} requests at the paper's high rate",
        requests.len()
    );

    let config = SimulationConfig {
        fleet: FleetSpec::paper(),
        duration,
        round_period: SimDuration::from_secs(2),
        strategy: Strategy::coordinated(),
        cp: CpModel::paper_packet(3),
        engine: EngineKind::Round,
        seed: 5,
    };

    let outcome = HanSimulation::new(config, requests)
        .expect("valid config")
        .run();

    println!("\ncommunication plane (packet-level MiniCast):");
    println!("  rounds executed           : {}", outcome.rounds);
    println!(
        "  record delivery rate      : {:.2}%",
        outcome.cp.delivery_rate() * 100.0
    );
    println!(
        "  fully-synchronized rounds : {:.1}%",
        outcome.cp.full_round_rate() * 100.0
    );
    if let Some(d) = &outcome.cp.dissemination {
        println!(
            "  MiniCast mean reliability : {:.2}% (worst node {:.1}%)",
            d.mean_reliability() * 100.0,
            d.worst_reliability() * 100.0
        );
        println!(
            "  all-to-all round rate     : {:.1}%",
            d.all_to_all_rate() * 100.0
        );
        println!(
            "  radio on per node per round: {} (duty cycle {:.1}%)",
            d.mean_radio_on_per_round(),
            d.duty_cycle(SimDuration::from_secs(2)) * 100.0
        );
        println!("  total transmissions       : {}", d.total_tx());
        println!(
            "  radio energy per DI       : {:.0} J/day (CC2420 at 3 V)",
            d.energy_per_node_per_day_mj(SimDuration::from_secs(2)) / 1000.0
        );
    }
    if let Some(err) = outcome.cp.worst_sync_error {
        println!("  worst clock-sync error    : {err} (20 ppm crystals, beacon every round)");
    }

    println!("\nexecution plane:");
    println!(
        "  schedule divergence       : {} of {} rounds ({:.2}%)",
        outcome.divergent_rounds,
        outcome.rounds,
        outcome.divergent_rounds as f64 / outcome.rounds as f64 * 100.0
    );
    println!("  windows served            : {}", outcome.windows_served);
    println!("  deadline misses           : {}", outcome.deadline_misses);
    println!(
        "  refused early-off commands: {}",
        outcome.refused_early_off
    );
    println!(
        "  energy delivered          : {:.2} kWh",
        outcome.energy_kwh
    );

    let end = SimTime::ZERO + duration;
    let peak = outcome.trace.peak(SimTime::ZERO, end);
    println!("  peak load                 : {peak:.1} kW");
}
