//! The paper's headline experiment: 26 × 1 kW devices on random request
//! workloads at three arrival rates, coordinated vs. uncoordinated.
//!
//! Prints the Fig. 2(b)/(c)-style comparison for each rate plus the
//! in-text claims (peak and std-dev reduction, unchanged average).
//!
//! Run with: `cargo run --release --example peak_shaving`

use smart_han::core::experiment::{compare_seeds, mean_metric, Comparison};
use smart_han::prelude::*;

fn main() -> Result<(), ScenarioError> {
    let seeds = 0..5u64;
    println!("paper scenario: 26 devices x 1 kW, minDCD 15 min, maxDCP 30 min, 350 min");
    println!("averaged over {} seeds\n", seeds.clone().count());

    for rate in ArrivalRate::all() {
        let template = Scenario::paper(rate, 0);
        let comparisons = compare_seeds(&template, &CpModel::Ideal, seeds.clone())?;

        let mean_unco_peak = mean_metric(&comparisons, |c| c.uncoordinated.summary.peak);
        let mean_coord_peak = mean_metric(&comparisons, |c| c.coordinated.summary.peak);
        let mean_unco_std = mean_metric(&comparisons, |c| c.uncoordinated.summary.std_dev);
        let mean_coord_std = mean_metric(&comparisons, |c| c.coordinated.summary.std_dev);
        let mean_unco_avg = mean_metric(&comparisons, |c| c.uncoordinated.summary.mean);
        let mean_coord_avg = mean_metric(&comparisons, |c| c.coordinated.summary.mean);

        let mut report = ComparisonReport::new(format!("arrival rate {rate}"));
        report.push(ComparisonRow::new(
            "peak load (kW)",
            mean_unco_peak,
            mean_coord_peak,
        ));
        report.push(ComparisonRow::new(
            "load std dev (kW)",
            mean_unco_std,
            mean_coord_std,
        ));
        report.push(ComparisonRow::new(
            "average load (kW)",
            mean_unco_avg,
            mean_coord_avg,
        ));
        println!("{}", report.to_table());

        let best_peak = comparisons
            .iter()
            .map(Comparison::peak_reduction_percent)
            .fold(f64::NEG_INFINITY, f64::max);
        let best_std = comparisons
            .iter()
            .map(Comparison::std_reduction_percent)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "best single run: peak reduction {best_peak:.0}%, std-dev reduction {best_std:.0}%\n"
        );
    }
    Ok(())
}
