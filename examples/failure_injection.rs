//! Failure injection: packet loss and a controller crash.
//!
//! Two experiments quantify the paper's motivation for decentralization:
//!
//! 1. **Round loss sweep** — whole communication rounds are lost per node
//!    with increasing probability. Every Device Interface guards *its own*
//!    obligations locally, so minDCD-per-maxDCP guarantees hold even at
//!    90 % loss; only schedule agreement erodes.
//! 2. **Controller crash** — the classical centralized alternative loses
//!    its controller mid-run. Devices stop receiving commands and pending
//!    obligations silently expire: the single point of failure, made
//!    concrete. The decentralized plane has no such component to lose.
//!
//! Run with: `cargo run --release --example failure_injection`

use smart_han::prelude::*;

const DURATION_MINS: u64 = 180;

fn run(strategy: Strategy, loss: f64) -> SimulationOutcome {
    let duration = SimDuration::from_mins(DURATION_MINS);
    let requests = PoissonArrivals::new(30.0, 26).generate(duration, 11);
    let config = SimulationConfig {
        fleet: FleetSpec::paper(),
        duration,
        round_period: SimDuration::from_secs(2),
        strategy,
        cp: CpModel::LossyRound {
            miss_probability: loss,
        },
        engine: EngineKind::Round,
        seed: 11,
    };
    HanSimulation::new(config, requests)
        .expect("valid config")
        .run()
}

fn main() {
    println!("== experiment 1: round-loss sweep (180 min, high rate) ==\n");
    println!(
        "{:>6}  {:>15} {:>15} {:>15}",
        "loss", "deadline misses", "diverged rounds", "peak (kW)"
    );
    for loss in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
        let coord = run(Strategy::coordinated(), loss);
        let end = SimTime::ZERO + SimDuration::from_mins(DURATION_MINS);
        println!(
            "{:>5.0}%  {:>15} {:>15} {:>15.1}",
            loss * 100.0,
            coord.deadline_misses,
            coord.divergent_rounds,
            coord.trace.peak(SimTime::ZERO, end),
        );
    }
    println!(
        "\nthe decentralized plane keeps every obligation at every loss level;\n\
         only agreement quality (and with it peak shaving) degrades gracefully.\n"
    );

    println!("== experiment 2: centralized controller crash at t = 90 min ==\n");
    for (label, crash) in [("healthy", None), ("crashes", Some(SimTime::from_mins(90)))] {
        let cent = run(
            Strategy::Centralized {
                controller: DeviceId(0),
                plan: PlanConfig::default(),
                crash_at: crash,
            },
            0.0,
        );
        println!(
            "controller {label:<8}: served {:>3} windows, missed {:>3} deadlines, \
             refused early-offs {}",
            cent.windows_served, cent.deadline_misses, cent.refused_early_off
        );
    }
    let coord = run(Strategy::coordinated(), 0.0);
    println!(
        "decentralized      : served {:>3} windows, missed {:>3} deadlines (nothing to crash)",
        coord.windows_served, coord.deadline_misses
    );
}
