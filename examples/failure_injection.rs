//! Failure injection: packet loss and scripted node churn.
//!
//! Two experiments quantify the paper's motivation for decentralization:
//!
//! 1. **Round loss sweep** — whole communication rounds are lost per node
//!    with increasing probability. Every Device Interface guards *its own*
//!    obligations locally, so minDCD-per-maxDCP guarantees hold even at
//!    90 % loss; only schedule agreement erodes.
//! 2. **Node churn** — a Device Interface falls off the network mid-run
//!    and returns an hour later, scripted through the deterministic
//!    [`FaultPlan`] API. The down node keeps guarding its obligations
//!    locally (zero deadline misses), survivors plan around it, and the
//!    report's resilience metrics show the recovery transient: how many
//!    rounds the plane needs to re-agree once the node returns.
//!
//! Run with: `cargo run --release --example failure_injection`

use smart_han::prelude::*;

const DURATION_MINS: u64 = 180;

fn run(strategy: Strategy, loss: f64, faults: &FaultPlan, ttl: Option<u32>) -> SimulationOutcome {
    let duration = SimDuration::from_mins(DURATION_MINS);
    let requests = PoissonArrivals::new(30.0, 26).generate(duration, 11);
    let config = SimulationConfig {
        fleet: FleetSpec::paper(),
        duration,
        round_period: SimDuration::from_secs(2),
        strategy,
        cp: CpModel::LossyRound {
            miss_probability: loss,
        },
        engine: EngineKind::Round,
        seed: 11,
    };
    let mut sim = HanSimulation::new(config, requests).expect("valid config");
    sim.set_faults(faults.clone()).expect("plan fits the fleet");
    sim.set_staleness_ttl(ttl);
    sim.run()
}

fn main() {
    println!("== experiment 1: round-loss sweep (180 min, high rate) ==\n");
    println!(
        "{:>6}  {:>15} {:>15} {:>15}",
        "loss", "deadline misses", "diverged rounds", "peak (kW)"
    );
    let end = SimTime::ZERO + SimDuration::from_mins(DURATION_MINS);
    for loss in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
        let coord = run(Strategy::coordinated(), loss, &FaultPlan::empty(), None);
        println!(
            "{:>5.0}%  {:>15} {:>15} {:>15.1}",
            loss * 100.0,
            coord.deadline_misses,
            coord.divergent_rounds,
            coord.trace.peak(SimTime::ZERO, end),
        );
    }
    println!(
        "\nthe decentralized plane keeps every obligation at every loss level;\n\
         only agreement quality (and with it peak shaving) degrades gracefully.\n"
    );

    println!("== experiment 2: node churn, scripted through the fault plane ==\n");
    let plan = FaultPlan::parse("down:5@60; up:5@120").expect("valid plan");
    println!("plan: down:5@60; up:5@120 — DI 5 leaves the network for an hour\n");
    let healthy = run(Strategy::coordinated(), 0.0, &FaultPlan::empty(), None);
    for (label, ttl) in [("ghost records kept", None), ("staleness TTL 30", Some(30))] {
        let churned = run(Strategy::coordinated(), 0.0, &plan, ttl);
        let res = &churned.resilience;
        println!(
            "{label:<18}: missed {:>2} deadlines, served {:>3} windows, \
             availability {:.4}, peak {:.1} kW (healthy {:.1})",
            churned.deadline_misses,
            churned.windows_served,
            res.availability(churned.cp.rounds, 26),
            churned.trace.peak(SimTime::ZERO, end),
            healthy.trace.peak(SimTime::ZERO, end),
        );
        match res.mean_recovery_rounds() {
            Some(mean) => println!(
                "                    recovery transient: {} event(s), mean {:.1} rounds \
                 (worst {}) from fault clearing to full re-agreement",
                res.recoveries.len(),
                mean,
                res.worst_recovery_rounds().unwrap_or(0),
            ),
            None => println!("                    recovery transient: none observed"),
        }
    }
    println!(
        "\nthe down DI guards its own obligations, so churn never costs a deadline;\n\
         aging out the dead node's ghost records (TTL) lets survivors stop planning\n\
         around its stale demand while it is away."
    );
}
