//! A 24-hour smart home: heterogeneous appliances, morning and evening
//! demand peaks, and an air-conditioned bedroom whose comfort we track.
//!
//! Demonstrates the richer modelling layers beyond the paper's uniform
//! evaluation: the time-of-day workload generator, a mixed fleet of Type-2
//! appliances with different rated powers (the planner balances kW, not
//! device counts), and the first-order thermal model driving a comfort
//! metric.
//!
//! Run with: `cargo run --release --example smart_home_day`

use smart_han::device::thermal::ThermalModel;
use smart_han::metrics::tariff::{demand_charge, TimeOfUseTariff};
use smart_han::prelude::*;

fn main() -> Result<(), ScenarioError> {
    // A household fleet: two ACs, water heater, room heater, fridge and a
    // water cooler — six schedulable devices of very different sizes —
    // composed through the validating scenario builder, driven by the
    // time-of-day household profile.
    let paper = DutyCycleConstraints::paper;
    let scenario = Scenario::builder("24-hour household")
        .class(DeviceClass::new(
            "bedroom ac",
            ApplianceKind::AirConditioner,
            1.5,
            paper(),
            1,
        ))
        .class(DeviceClass::new(
            "living ac",
            ApplianceKind::AirConditioner,
            1.0,
            paper(),
            1,
        ))
        .class(DeviceClass::new(
            "geyser",
            ApplianceKind::WaterHeater,
            2.0,
            paper(),
            1,
        ))
        .class(DeviceClass::new(
            "room heater",
            ApplianceKind::RoomHeater,
            1.8,
            paper(),
            1,
        ))
        .class(DeviceClass::new(
            "fridge",
            ApplianceKind::Fridge,
            0.15,
            paper(),
            1,
        ))
        .class(DeviceClass::new(
            "cooler",
            ApplianceKind::WaterCooler,
            0.5,
            paper(),
            1,
        ))
        .daily(DailyProfile::typical_household())
        .duration(SimDuration::from_hours(24))
        .seed(7)
        .build()?;

    let duration = scenario.duration;
    let requests = scenario.requests();
    println!(
        "generated {} requests over 24 h (evening-heavy profile)",
        requests.len()
    );

    let config = |strategy| SimulationConfig {
        fleet: scenario.fleet.clone(),
        duration,
        round_period: SimDuration::from_secs(2),
        strategy,
        cp: CpModel::Ideal,
        engine: EngineKind::Round,
        seed: 7,
    };

    // Type-1 background: instant appliances the scheduler cannot touch.
    let background = LoadTrace::from_pulses([
        // morning TV + kettle block
        (SimTime::from_hours(7), SimDuration::from_mins(45), 0.4),
        // evening lighting + TV
        (SimTime::from_hours(18), SimDuration::from_hours(4), 0.5),
        // a hair dryer at 07:30
        (
            SimTime::from_secs(7 * 3600 + 1800),
            SimDuration::from_mins(8),
            1.2,
        ),
    ]);

    let mut unco_sim = HanSimulation::new(config(Strategy::Uncoordinated), requests.clone())?;
    unco_sim.set_background(background.clone());
    let unco = unco_sim.run();
    let mut coord_sim = HanSimulation::new(config(Strategy::coordinated()), requests)?;
    coord_sim.set_background(background);
    let coord = coord_sim.run();

    let end = SimTime::ZERO + duration;
    let minute = SimDuration::from_mins(1);
    let unco_s = Summary::of(&unco.trace.sample(SimTime::ZERO, end, minute));
    let coord_s = Summary::of(&coord.trace.sample(SimTime::ZERO, end, minute));

    let mut report = ComparisonReport::new("24-hour household, heterogeneous fleet");
    report.push(ComparisonRow::new(
        "peak load (kW)",
        unco_s.peak,
        coord_s.peak,
    ));
    report.push(ComparisonRow::new(
        "load std dev (kW)",
        unco_s.std_dev,
        coord_s.std_dev,
    ));
    report.push(ComparisonRow::new(
        "energy (kWh)",
        unco.energy_kwh,
        coord.energy_kwh,
    ));
    println!("\n{}", report.to_table());
    println!(
        "coordinated: {} windows served, {} deadline misses, {} requests",
        coord.windows_served, coord.deadline_misses, coord.requests_delivered
    );

    // What the load shape costs: time-of-use energy plus a demand charge.
    let tariff = TimeOfUseTariff::typical_residential();
    let demand_rate = 12.0; // per kW of monthly peak
    let cost_unco = tariff.energy_cost(&unco.trace, SimTime::ZERO, end)
        + demand_charge(&unco.trace, SimTime::ZERO, end, demand_rate);
    let cost_coord = tariff.energy_cost(&coord.trace, SimTime::ZERO, end)
        + demand_charge(&coord.trace, SimTime::ZERO, end, demand_rate);
    println!(
        "
billing (ToU energy + {demand_rate}/kW demand charge): {cost_unco:.2} -> {cost_coord:.2}          ({:.1}% saved, all of it from the peak)",
        (cost_unco - cost_coord) / cost_unco * 100.0
    );

    // Comfort check for the 1.5 kW bedroom AC (device 0): replay its ON/OFF
    // pattern through the thermal model. The scheduler may shift the
    // compressor by up to 15 minutes; the room barely notices.
    let mut room = ThermalModel::indian_summer_room(30.0);
    let mut worst_c = f64::NEG_INFINITY;
    let step = SimDuration::from_mins(1);
    let mut t = SimTime::ZERO;
    let ac_kw = 1.5;
    while t < end {
        // Device 0 is ON when its share of the total coordinated load is
        // present; we approximate by sampling its own power contribution.
        let on = coord.trace.value_at(t) >= ac_kw; // conservative proxy
        room.step(step, on);
        worst_c = worst_c.max(room.temperature_c());
        t += step;
    }
    println!(
        "\nbedroom thermal check: warmest instant {:.1} degC against a 40 degC ambient \
         (compressor duty target {:.0}%)",
        worst_c,
        room.required_duty_fraction(27.0) * 100.0
    );
    Ok(())
}
