//! Feeder coordination on a heterogeneous street: homes iterating against
//! a broadcast aggregate signal.
//!
//! Eight homes of three kinds share one distribution feeder. Per-home
//! coordination (the paper's scheme) flattens each home, but the homes
//! are blind to each other — their peaks can still coincide. This example
//! closes the loop with `han_core::feeder`: the street is run under
//!
//! 1. a **capacity cap** at 85% of its independently-coordinated feeder
//!    peak — homes re-plan against the broadcast residual headroom,
//!    Gauss-Seidel order (sequential, freshest aggregate: the update
//!    order that converges where synchronized Jacobi reaction herds all
//!    homes into the same valleys); and
//! 2. a **time-of-use price** broadcast — homes curtail admission in
//!    expensive hours; the signal is aggregate-blind, so it converges
//!    after a single re-plan, and the flexible water heaters ride it out
//!    of the evening price band.
//!
//! Both runs keep every duty-cycle obligation (signals shape *admission*,
//! never deadlines) and neither regresses the feeder peak past the
//! independent baseline — the coordinator commits the best iterate under
//! the signal's own objective, with the signal-free solution as the
//! fallback candidate.
//!
//! Run with: `cargo run --release --example feeder_coordination`

use smart_han::core::feeder::{FeederPolicy, FeederReport, FeederSignal};
use smart_han::metrics::tariff::{Billing, TimeOfUseTariff};
use smart_han::prelude::*;
use smart_han::workload::signal::PowerCapProfile;

const HOURS: u64 = 18; // cover the evening tariff peak (17:00–21:00)

fn family_home(idx: u64) -> Result<Scenario, ScenarioError> {
    let paper = DutyCycleConstraints::paper;
    // Water heating is genuinely deferrable: 30 minutes of element time
    // anywhere inside a 3-hour window — enough flexibility for a price
    // signal to move it off the evening peak entirely.
    let flexible =
        DutyCycleConstraints::new(SimDuration::from_mins(30), SimDuration::from_hours(3))
            .expect("valid constraints");
    Scenario::builder(format!("family #{idx}"))
        .class(DeviceClass::new(
            "ac",
            ApplianceKind::AirConditioner,
            1.5,
            paper(),
            2,
        ))
        .class(DeviceClass::new(
            "geyser",
            ApplianceKind::WaterHeater,
            2.0,
            flexible,
            1,
        ))
        .class(DeviceClass::new(
            "fridge",
            ApplianceKind::Fridge,
            0.15,
            paper(),
            1,
        ))
        .daily(DailyProfile::typical_household())
        .duration(SimDuration::from_hours(HOURS))
        .seed(100 + idx)
        .build()
}

fn studio_home(idx: u64) -> Result<Scenario, ScenarioError> {
    let paper = DutyCycleConstraints::paper;
    Scenario::builder(format!("studio #{idx}"))
        .class(DeviceClass::new(
            "ac",
            ApplianceKind::AirConditioner,
            1.0,
            paper(),
            1,
        ))
        .class(DeviceClass::new(
            "cooler",
            ApplianceKind::WaterCooler,
            0.5,
            paper(),
            1,
        ))
        .poisson(6.0)
        .duration(SimDuration::from_hours(HOURS))
        .seed(200 + idx)
        .build()
}

fn paper_home(idx: u64) -> Scenario {
    Scenario {
        name: format!("paper home #{idx}"),
        duration: SimDuration::from_hours(HOURS),
        seed: 300 + idx,
        ..Scenario::paper(ArrivalRate::Moderate, 0)
    }
}

fn describe(run: &FeederReport, independent_peak: f64, billing: &Billing) {
    println!("\n=== signal: {} ===", run.signal);
    for it in &run.trace.iterations {
        println!(
            "  iteration {}: feeder peak {:.2} kW, aggregate change {:.3} kW",
            it.iteration, it.feeder_peak_kw, it.change_norm_kw
        );
    }
    println!(
        "  stopped: {:?} after {} iteration(s); committed iterate {}",
        run.trace.stop,
        run.iterations(),
        run.selected_iteration
    );
    println!(
        "  feeder peak: {:.2} kW with signal vs {:.2} kW independent ({:+.1}%)",
        run.feeder.peak,
        independent_peak,
        -run.feeder_peak_vs_independent_percent()
    );
    let cost = run.feeder_cost(billing);
    println!(
        "  feeder bill: energy {:.2} + demand {:.2} = {:.2}",
        cost.energy_cost,
        cost.demand_charge,
        cost.total()
    );
    println!(
        "  deadline misses under signal: {}",
        run.total_deadline_misses()
    );
}

fn main() -> Result<(), ScenarioError> {
    // Eight homes, three kinds, one of them on a lossy wireless network.
    let mut homes = Vec::new();
    for i in 0..3 {
        homes.push(Home::new(family_home(i)?, CpModel::Ideal));
    }
    for i in 0..3 {
        let cp = if i == 2 {
            CpModel::LossyRound {
                miss_probability: 0.3,
            }
        } else {
            CpModel::Ideal
        };
        homes.push(Home::new(studio_home(i)?, cp));
    }
    for i in 0..2 {
        homes.push(Home::new(paper_home(i), CpModel::Ideal));
    }
    let hood = Neighborhood::new("one feeder, eight homes", homes)?;
    println!(
        "{}: {} homes, {} devices, {HOURS} h horizon",
        hood.name,
        hood.homes.len(),
        hood.device_count()
    );

    // Baselines: every home uncoordinated / independently coordinated.
    let independent = hood.run()?;
    println!(
        "feeder peak: {:.2} kW uncoordinated, {:.2} kW independently coordinated",
        independent.feeder_uncoordinated.peak, independent.feeder_coordinated.peak
    );
    let billing = Billing::typical_residential();

    // Signal 1: a hard capacity cap at 85% of the independent feeder peak.
    let cap_kw = independent.feeder_coordinated.peak * 0.85;
    let capacity = hood.run_with(&FeederPolicy::gauss_seidel(FeederSignal::Capacity(
        PowerCapProfile::constant(cap_kw)?,
    )))?;
    describe(&capacity, independent.feeder_coordinated.peak, &billing);

    // Signal 2: the typical residential time-of-use price broadcast.
    let tou = hood.run_with(&FeederPolicy::new(FeederSignal::time_of_use(
        TimeOfUseTariff::typical_residential(),
    )))?;
    describe(&tou, independent.feeder_coordinated.peak, &billing);

    // The properties this example demonstrates, asserted so CI-run builds
    // of the example keep meaning something:
    for run in [&capacity, &tou] {
        assert!(
            run.iterations()
                <= FeederPolicy::new(run.signal.clone())
                    .convergence
                    .max_iterations,
            "bounded iteration count"
        );
        assert_eq!(
            run.total_deadline_misses(),
            0,
            "signals never cost deadlines"
        );
        assert!(
            run.feeder.peak <= independent.feeder_coordinated.peak + 1e-9,
            "the committed iterate never regresses the independent feeder peak"
        );
    }
    assert_eq!(
        independent
            .homes
            .iter()
            .map(|h| h.comparison.coordinated.outcome.deadline_misses)
            .sum::<u32>(),
        0,
        "zero misses in the independent baseline too"
    );

    println!(
        "\nper-home coordination flattens each home; the feeder signal makes the homes\n\
         coordinate with each other — same obligations, lower street peak."
    );
    Ok(())
}
