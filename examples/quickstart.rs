//! Quickstart: six smart appliances, one synchronized burst of requests.
//!
//! Shows the headline mechanism in miniature: without coordination a burst
//! of requests stacks the full load at once; with the collaborative plane
//! the instances are spread across the duty-cycle windows and the peak
//! halves — while everyone still gets their minDCD within maxDCP.
//!
//! Run with: `cargo run --example quickstart`

use smart_han::prelude::*;
use smart_han::workload::burst;

fn main() -> Result<(), ScenarioError> {
    // Six 1 kW Type-2 devices, paper constraints (15 min of every 30 min),
    // all requested at once at t = 2 min.
    let requests = burst(SimTime::from_mins(2), 6);
    let duration = SimDuration::from_mins(45);

    let config = |strategy| SimulationConfig {
        fleet: FleetSpec::uniform(6, 1.0, DutyCycleConstraints::paper())
            .expect("valid uniform fleet"),
        duration,
        round_period: SimDuration::from_secs(2),
        strategy,
        cp: CpModel::Ideal,
        engine: EngineKind::Round,
        seed: 1,
    };

    let unco = HanSimulation::new(config(Strategy::Uncoordinated), requests.clone())?.run();
    let coord = HanSimulation::new(config(Strategy::coordinated()), requests)?.run();

    let end = SimTime::ZERO + duration;
    let minute = SimDuration::from_mins(1);
    let unco_samples = unco.trace.sample(SimTime::ZERO, end, minute);
    let coord_samples = coord.trace.sample(SimTime::ZERO, end, minute);

    println!("load over time (kW), one row per 3 minutes:");
    println!("{:>6}  {:>12}  {:>12}", "min", "w/o coord", "with coord");
    for (i, (u, c)) in unco_samples.iter().zip(&coord_samples).enumerate() {
        if i % 3 == 0 {
            println!("{i:>6}  {u:>12.1}  {c:>12.1}");
        }
    }

    let mut report = ComparisonReport::new("burst of 6 requests");
    report.push(ComparisonRow::new(
        "peak load (kW)",
        Summary::of(&unco_samples).peak,
        Summary::of(&coord_samples).peak,
    ));
    report.push(ComparisonRow::new(
        "load std dev (kW)",
        Summary::of(&unco_samples).std_dev,
        Summary::of(&coord_samples).std_dev,
    ));
    report.push(ComparisonRow::new(
        "energy (kWh)",
        unco.energy_kwh,
        coord.energy_kwh,
    ));
    println!("\n{}", report.to_table());
    println!(
        "obligations met: {}/{} (coordinated), deadline misses: {}",
        coord.windows_served,
        coord.windows_served + coord.deadline_misses,
        coord.deadline_misses
    );
    Ok(())
}
