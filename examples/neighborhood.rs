//! A heterogeneous neighborhood: eight homes of three different kinds on
//! one distribution feeder.
//!
//! Each home is an independent HAN — its own fleet, workload, seed and
//! communication plane — coordinated only internally. The neighborhood
//! layer runs every home in parallel (one home per worker) and aggregates
//! the feeder: does per-home coordination still flatten the street-level
//! load, and how much does household diversity help on top?
//!
//! Run with: `cargo run --release --example neighborhood`

use smart_han::prelude::*;

fn family_home(idx: u64) -> Result<Scenario, ScenarioError> {
    let paper = DutyCycleConstraints::paper;
    Scenario::builder(format!("family #{idx}"))
        .class(DeviceClass::new(
            "ac",
            ApplianceKind::AirConditioner,
            1.5,
            paper(),
            2,
        ))
        .class(DeviceClass::new(
            "geyser",
            ApplianceKind::WaterHeater,
            2.0,
            paper(),
            1,
        ))
        .class(DeviceClass::new(
            "fridge",
            ApplianceKind::Fridge,
            0.15,
            paper(),
            1,
        ))
        .daily(DailyProfile::typical_household())
        .duration(SimDuration::from_hours(6))
        .seed(100 + idx)
        .build()
}

fn studio_home(idx: u64) -> Result<Scenario, ScenarioError> {
    let paper = DutyCycleConstraints::paper;
    Scenario::builder(format!("studio #{idx}"))
        .class(DeviceClass::new(
            "ac",
            ApplianceKind::AirConditioner,
            1.0,
            paper(),
            1,
        ))
        .class(DeviceClass::new(
            "cooler",
            ApplianceKind::WaterCooler,
            0.5,
            paper(),
            1,
        ))
        .poisson(6.0)
        .duration(SimDuration::from_hours(6))
        .seed(200 + idx)
        .build()
}

fn paper_home(idx: u64) -> Scenario {
    Scenario {
        name: format!("paper home #{idx}"),
        duration: SimDuration::from_hours(6),
        seed: 300 + idx,
        ..Scenario::paper(ArrivalRate::Moderate, 0)
    }
}

fn main() -> Result<(), ScenarioError> {
    // Eight homes: 3 family houses, 3 studios, 2 paper-style 26-device
    // homes; one studio suffers a lossy wireless network.
    let mut homes = Vec::new();
    for i in 0..3 {
        homes.push(Home::new(family_home(i)?, CpModel::Ideal));
    }
    for i in 0..3 {
        let cp = if i == 2 {
            CpModel::LossyRound {
                miss_probability: 0.3,
            }
        } else {
            CpModel::Ideal
        };
        homes.push(Home::new(studio_home(i)?, cp));
    }
    for i in 0..2 {
        homes.push(Home::new(paper_home(i), CpModel::Ideal));
    }

    let hood = Neighborhood::new("one feeder, eight homes", homes)?;
    println!(
        "{}: {} homes, {} devices total\n",
        hood.name,
        hood.homes.len(),
        hood.device_count()
    );

    let report = hood.run()?;

    println!(
        "{:<16} {:>9} {:>9} {:>8} {:>8}",
        "home", "peak w/o", "peak w/", "red %", "misses"
    );
    for home in &report.homes {
        let c = &home.comparison;
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>8.1} {:>8}",
            home.name,
            c.uncoordinated.summary.peak,
            c.coordinated.summary.peak,
            c.peak_reduction_percent(),
            c.coordinated.outcome.deadline_misses,
        );
    }

    println!("\nfeeder (sum of all homes):");
    let mut table = ComparisonReport::new("feeder-level aggregate");
    table.push(ComparisonRow::new(
        "peak load (kW)",
        report.feeder_uncoordinated.peak,
        report.feeder_coordinated.peak,
    ));
    table.push(ComparisonRow::new(
        "load std dev (kW)",
        report.feeder_uncoordinated.std_dev,
        report.feeder_coordinated.std_dev,
    ));
    table.push(ComparisonRow::new(
        "average load (kW)",
        report.feeder_uncoordinated.mean,
        report.feeder_coordinated.mean,
    ));
    println!("{}", table.to_table());

    println!(
        "feeder peak reduction {:.1}%, std reduction {:.1}%, average gap {:.2}%",
        report.feeder_peak_reduction_percent(),
        report.feeder_std_reduction_percent(),
        report.feeder_average_gap_percent(),
    );
    println!(
        "coincidence factor (feeder peak / sum of home peaks): {:.2} uncoordinated, \
         {:.2} coordinated",
        report.coincidence_factor_uncoordinated(),
        report.coincidence_factor_coordinated(),
    );
    println!("\nper-home coordination flattens each home; household diversity does the rest.");
    Ok(())
}
