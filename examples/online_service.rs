//! The online service mode, driven in-process.
//!
//! The same [`OnlineDriver`] that backs `hansim serve` is an ordinary
//! library type: this example streams a day of telemetry into a running
//! simulation event by event, queries it over the text protocol (no
//! socket needed — [`respond`] is just a function), snapshots the
//! service mid-window, "kills" it, restores a fresh driver from the
//! snapshot bytes, and shows that the restored run finishes
//! bit-identical to the uninterrupted one.
//!
//! Run with: `cargo run --release --example online_service`

use smart_han::core::online::protocol::respond;
use smart_han::prelude::*;

/// Telemetry as it would arrive over the wire: two appliance arrivals,
/// a feeder cap tightening at minute 6, an early manual switch-off.
const TELEMETRY: &str = "arrive:3@2; arrive:5@4; cap:10@6; done:3@8";

fn base() -> Result<HanSimulation, ScenarioError> {
    let config = SimulationConfig {
        fleet: FleetSpec::paper(),
        duration: SimDuration::from_mins(30),
        round_period: SimDuration::from_secs(2),
        strategy: Strategy::Coordinated(PlanConfig::default()),
        cp: CpModel::Ideal,
        engine: EngineKind::Round,
        seed: 7,
    };
    HanSimulation::new(config, Vec::new())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A service around an empty scenario: every request the fleet
    //    will see arrives online, through ingest.
    let mut online = OnlineDriver::new(base()?);
    let ingested = online.ingest_script(TELEMETRY)?;
    println!("ingested {ingested} telemetry events up front");

    // 2. Drive it with protocol lines, exactly what `hansim serve`
    //    speaks over TCP.
    for line in ["STATUS", "SCHEDULE 3", "FEEDER"] {
        println!("> {line}\n< {}", respond(&mut online, line).line);
    }

    // 3. Advance half the window and snapshot — the `HANSRV01` bytes
    //    that `--checkpoint-every` writes atomically on cadence.
    let half = online.total_rounds() / 2;
    online.advance_to(half);
    let snapshot = online.snapshot();
    println!("\nsnapshot at round {half}: {} bytes", snapshot.len());
    for line in ["STATUS", "FEEDER"] {
        println!("> {line}\n< {}", respond(&mut online, line).line);
    }

    // 4. The uninterrupted run finishes the window...
    online.run_to_end();
    let uninterrupted = online.into_outcome();

    // 5. ...and so does a fresh driver restored from the snapshot (the
    //    base scenario plus the snapshot bytes are all it needs).
    let mut restored = OnlineDriver::restore(base()?, &snapshot)?;
    println!("restored driver resumes at round {}", restored.next_round());
    restored.run_to_end();
    let resumed = restored.into_outcome();

    println!(
        "\nuninterrupted digest {:016x}, misses {}, energy {:.3} kWh",
        uninterrupted.schedule_digest, uninterrupted.deadline_misses, uninterrupted.energy_kwh
    );
    println!(
        "restored      digest {:016x}, misses {}, energy {:.3} kWh",
        resumed.schedule_digest, resumed.deadline_misses, resumed.energy_kwh
    );
    assert_eq!(uninterrupted.schedule_digest, resumed.schedule_digest);
    assert_eq!(uninterrupted.trace.points(), resumed.trace.points());
    assert_eq!(
        uninterrupted.energy_kwh.to_bits(),
        resumed.energy_kwh.to_bits()
    );
    println!("kill/restore is bit-identical to never having stopped");
    Ok(())
}
